package graph

import "container/heap"

// BFS traverses g from start, calling visit for each reachable vertex in
// breadth-first order. Traversal stops early if visit returns false.
func (g *Graph[V]) BFS(start ID, visit func(ID) bool) {
	if int(start) >= len(g.adj) {
		return
	}
	seen := make([]bool, len(g.adj))
	queue := []ID{start}
	seen[start] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !visit(cur) {
			return
		}
		for _, e := range g.adj[cur] {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
}

// ConnectedComponents returns a component label per vertex and the number
// of components.
func (g *Graph[V]) ConnectedComponents() (labels []int, count int) {
	labels = make([]int, len(g.adj))
	for i := range labels {
		labels[i] = -1
	}
	for v := range g.adj {
		if labels[v] != -1 {
			continue
		}
		g.BFS(ID(v), func(id ID) bool {
			labels[id] = count
			return true
		})
		count++
	}
	return labels, count
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	id   ID
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// ShortestPath returns the minimum-weight path from a to b and its total
// weight using Dijkstra's algorithm. ok is false when b is unreachable.
// Edge weights must be non-negative.
func (g *Graph[V]) ShortestPath(a, b ID) (path []ID, dist float64, ok bool) {
	n := len(g.adj)
	if int(a) >= n || int(b) >= n {
		return nil, 0, false
	}
	const unvisited = -2
	prev := make([]ID, n)
	seen := make([]bool, n)
	best := make([]float64, n)
	for i := range prev {
		prev[i] = unvisited
		best[i] = -1
	}
	q := &pq{{id: a, dist: 0}}
	best[a] = 0
	prev[a] = InvalidID
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if seen[it.id] {
			continue
		}
		seen[it.id] = true
		if it.id == b {
			break
		}
		for _, e := range g.adj[it.id] {
			nd := it.dist + e.Weight
			if best[e.To] < 0 || nd < best[e.To] {
				best[e.To] = nd
				prev[e.To] = it.id
				heap.Push(q, pqItem{id: e.To, dist: nd})
			}
		}
	}
	if !seen[b] {
		return nil, 0, false
	}
	for cur := b; cur != InvalidID; cur = prev[cur] {
		path = append(path, cur)
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, best[b], true
}
