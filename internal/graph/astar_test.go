package graph

import (
	"math"
	"testing"

	"parmp/internal/rng"
)

func TestAStarMatchesDijkstra(t *testing.T) {
	// With a zero heuristic, A* must match ShortestPath exactly on random
	// weighted graphs.
	r := rng.New(21)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(40)
		g := New[int](n)
		for i := 0; i < n; i++ {
			g.AddVertex(i)
		}
		for i := 0; i < n*3; i++ {
			g.AddEdge(ID(r.Intn(n)), ID(r.Intn(n)), r.Float64()*10)
		}
		a, b := ID(r.Intn(n)), ID(r.Intn(n))
		dPath, dDist, dOK := g.ShortestPath(a, b)
		aPath, aDist, aOK := g.AStar(a, b, nil)
		if dOK != aOK {
			t.Fatalf("trial %d: reachability mismatch", trial)
		}
		if dOK {
			if math.Abs(dDist-aDist) > 1e-9 {
				t.Fatalf("trial %d: dist %v vs %v", trial, dDist, aDist)
			}
			if len(dPath) == 0 || len(aPath) == 0 {
				t.Fatalf("trial %d: empty path", trial)
			}
			if aPath[0] != a || aPath[len(aPath)-1] != b {
				t.Fatalf("trial %d: endpoints wrong: %v", trial, aPath)
			}
		}
	}
}

func TestAStarWithConsistentHeuristic(t *testing.T) {
	// Grid graph with Manhattan-distance heuristic: admissible and
	// consistent, so A* must return the optimal path and expand no more
	// than Dijkstra (we just check optimality).
	const w, h = 8, 8
	g := New[[2]int](w * h)
	id := func(x, y int) ID { return ID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.AddVertex([2]int{x, y})
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				g.AddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	goal := [2]int{7, 7}
	heur := func(v ID) float64 {
		c := g.Vertex(v)
		return math.Abs(float64(c[0]-goal[0])) + math.Abs(float64(c[1]-goal[1]))
	}
	path, dist, ok := g.AStar(id(0, 0), id(7, 7), heur)
	if !ok || dist != 14 {
		t.Fatalf("dist = %v ok = %v", dist, ok)
	}
	if len(path) != 15 {
		t.Fatalf("path length = %d", len(path))
	}
	// Consecutive path vertices must be grid neighbours.
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			t.Fatal("path uses non-edge")
		}
	}
}

func TestAStarUnreachableAndSelf(t *testing.T) {
	g := New[int](3)
	g.AddVertex(0)
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddEdge(0, 1, 1)
	if _, _, ok := g.AStar(0, 2, nil); ok {
		t.Fatal("unreachable should fail")
	}
	path, dist, ok := g.AStar(1, 1, nil)
	if !ok || dist != 0 || len(path) != 1 {
		t.Fatalf("self path = %v dist=%v", path, dist)
	}
	if _, _, ok := g.AStar(0, 99, nil); ok {
		t.Fatal("out-of-range target should fail")
	}
}
