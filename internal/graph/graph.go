// Package graph provides the generic adjacency-list graph used both for
// roadmaps (vertices = configurations, edges = valid local plans) and for
// region graphs (vertices = subdivision regions, edges = adjacency).
//
// It is a sequential data structure; distribution is handled a level up by
// assigning vertex ranges (regions) to virtual processors.
package graph

import "fmt"

// ID identifies a vertex within a Graph.
type ID int

// InvalidID is returned by lookups that find nothing.
const InvalidID ID = -1

// Edge is a weighted, undirected adjacency record.
type Edge struct {
	To     ID
	Weight float64
}

// Graph is an undirected adjacency-list graph with vertex payloads of
// type V. The zero value is an empty graph ready to use.
type Graph[V any] struct {
	verts []V
	adj   [][]Edge
	edges int
}

// New returns an empty graph with capacity hint n.
func New[V any](n int) *Graph[V] {
	return &Graph[V]{
		verts: make([]V, 0, n),
		adj:   make([][]Edge, 0, n),
	}
}

// AddVertex appends a vertex and returns its ID.
func (g *Graph[V]) AddVertex(v V) ID {
	g.verts = append(g.verts, v)
	g.adj = append(g.adj, nil)
	return ID(len(g.verts) - 1)
}

// NumVertices returns the number of vertices.
func (g *Graph[V]) NumVertices() int { return len(g.verts) }

// NumEdges returns the number of undirected edges.
func (g *Graph[V]) NumEdges() int { return g.edges }

// Vertex returns the payload of id. It panics for out-of-range ids.
func (g *Graph[V]) Vertex(id ID) V { return g.verts[id] }

// SetVertex replaces the payload of id.
func (g *Graph[V]) SetVertex(id ID, v V) { g.verts[id] = v }

// AddEdge inserts an undirected edge a—b with the given weight. Duplicate
// and self edges are rejected (returning false).
func (g *Graph[V]) AddEdge(a, b ID, weight float64) bool {
	if a == b {
		return false
	}
	if g.HasEdge(a, b) {
		return false
	}
	g.adj[a] = append(g.adj[a], Edge{To: b, Weight: weight})
	g.adj[b] = append(g.adj[b], Edge{To: a, Weight: weight})
	g.edges++
	return true
}

// HasEdge reports whether an edge a—b exists.
func (g *Graph[V]) HasEdge(a, b ID) bool {
	if int(a) >= len(g.adj) || int(b) >= len(g.adj) {
		return false
	}
	// Scan the shorter adjacency list.
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, e := range g.adj[a] {
		if e.To == b {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of id. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph[V]) Neighbors(id ID) []Edge { return g.adj[id] }

// Degree returns the number of edges incident to id.
func (g *Graph[V]) Degree(id ID) int { return len(g.adj[id]) }

// ForEachEdge calls fn once per undirected edge (a < b ordering).
func (g *Graph[V]) ForEachEdge(fn func(a, b ID, w float64)) {
	for a := range g.adj {
		for _, e := range g.adj[a] {
			if ID(a) < e.To {
				fn(ID(a), e.To, e.Weight)
			}
		}
	}
}

// String summarizes the graph.
func (g *Graph[V]) String() string {
	return fmt.Sprintf("graph{V=%d, E=%d}", g.NumVertices(), g.NumEdges())
}

// RemoveLastVertex deletes the most recently added vertex and all its
// edges. Only the last vertex can be removed (IDs stay dense), which is
// exactly what transient query attachments need. It panics on an empty
// graph.
func (g *Graph[V]) RemoveLastVertex() {
	last := ID(len(g.verts) - 1)
	if last < 0 {
		panic("graph: RemoveLastVertex on empty graph")
	}
	for _, e := range g.adj[last] {
		nbr := g.adj[e.To]
		for i, back := range nbr {
			if back.To == last {
				g.adj[e.To] = append(nbr[:i], nbr[i+1:]...)
				g.edges--
				break
			}
		}
	}
	g.verts = g.verts[:last]
	g.adj = g.adj[:last]
}
