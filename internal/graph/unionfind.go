package graph

// UnionFind is a disjoint-set forest with union by rank and path
// compression. It tracks roadmap connected components incrementally so
// planners can cheaply ask "are these two samples already connected?"
// before spending local-planning work.
type UnionFind struct {
	parent []int
	rank   []byte
	sets   int
}

// NewUnionFind returns a structure over n singleton elements.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{
		parent: make([]int, n),
		rank:   make([]byte, n),
		sets:   n,
	}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// Grow appends k new singleton elements and returns the index of the
// first one.
func (u *UnionFind) Grow(k int) int {
	first := len(u.parent)
	for i := 0; i < k; i++ {
		u.parent = append(u.parent, first+i)
		u.rank = append(u.rank, 0)
	}
	u.sets += k
	return first
}

// Len returns the number of elements.
func (u *UnionFind) Len() int { return len(u.parent) }

// Sets returns the number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing a and b; it reports whether a merge
// happened (false if they were already together).
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b int) bool { return u.Find(a) == u.Find(b) }
