package graph

import (
	"math"
	"testing"
	"testing/quick"

	"parmp/internal/rng"
)

func buildPath(n int) *Graph[int] {
	g := New[int](n)
	for i := 0; i < n; i++ {
		g.AddVertex(i)
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(ID(i), ID(i+1), 1)
	}
	return g
}

func TestAddVertexEdge(t *testing.T) {
	g := New[string](0)
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	if g.NumVertices() != 2 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if !g.AddEdge(a, b, 2.5) {
		t.Fatal("AddEdge failed")
	}
	if g.AddEdge(a, b, 1) {
		t.Fatal("duplicate edge accepted")
	}
	if g.AddEdge(a, a, 1) {
		t.Fatal("self edge accepted")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if !g.HasEdge(b, a) {
		t.Fatal("undirected edge missing reverse direction")
	}
	if g.Vertex(a) != "a" {
		t.Fatalf("Vertex = %q", g.Vertex(a))
	}
	g.SetVertex(a, "z")
	if g.Vertex(a) != "z" {
		t.Fatal("SetVertex did not stick")
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Fatal("degrees wrong")
	}
}

func TestForEachEdgeVisitsOnce(t *testing.T) {
	g := buildPath(5)
	count := 0
	g.ForEachEdge(func(a, b ID, w float64) {
		if a >= b {
			t.Fatalf("edge order violated: %d >= %d", a, b)
		}
		count++
	})
	if count != 4 {
		t.Fatalf("visited %d edges, want 4", count)
	}
}

func TestBFSOrder(t *testing.T) {
	g := buildPath(4)
	var order []ID
	g.BFS(0, func(id ID) bool {
		order = append(order, id)
		return true
	})
	want := []ID{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestBFSEarlyStop(t *testing.T) {
	g := buildPath(10)
	visits := 0
	g.BFS(0, func(ID) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Fatalf("visits = %d", visits)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New[int](6)
	for i := 0; i < 6; i++ {
		g.AddVertex(i)
	}
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
	if labels[0] != labels[2] || labels[3] != labels[4] || labels[0] == labels[3] || labels[5] == labels[0] {
		t.Fatalf("labels = %v", labels)
	}
}

func TestShortestPathSimple(t *testing.T) {
	g := New[int](4)
	for i := 0; i < 4; i++ {
		g.AddVertex(i)
	}
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 1)
	path, dist, ok := g.ShortestPath(0, 3)
	if !ok || dist != 2 {
		t.Fatalf("dist = %v ok = %v", dist, ok)
	}
	want := []ID{0, 1, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v", path)
		}
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New[int](2)
	g.AddVertex(0)
	g.AddVertex(1)
	if _, _, ok := g.ShortestPath(0, 1); ok {
		t.Fatal("disconnected vertices should be unreachable")
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := buildPath(3)
	path, dist, ok := g.ShortestPath(1, 1)
	if !ok || dist != 0 || len(path) != 1 || path[0] != 1 {
		t.Fatalf("self path = %v dist=%v ok=%v", path, dist, ok)
	}
}

func TestShortestPathMatchesBFSOnUnitWeights(t *testing.T) {
	// Property: on random unit-weight graphs Dijkstra distance equals
	// BFS hop count.
	r := rng.New(42)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(30)
		g := New[int](n)
		for i := 0; i < n; i++ {
			g.AddVertex(i)
		}
		for i := 0; i < n*2; i++ {
			g.AddEdge(ID(r.Intn(n)), ID(r.Intn(n)), 1)
		}
		src, dst := ID(r.Intn(n)), ID(r.Intn(n))
		// BFS hop count.
		hops := map[ID]int{src: 0}
		queue := []ID{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range g.Neighbors(cur) {
				if _, seen := hops[e.To]; !seen {
					hops[e.To] = hops[cur] + 1
					queue = append(queue, e.To)
				}
			}
		}
		path, dist, ok := g.ShortestPath(src, dst)
		hop, reach := hops[dst]
		if ok != reach {
			t.Fatalf("trial %d: reachability mismatch", trial)
		}
		if ok {
			if math.Abs(dist-float64(hop)) > 1e-9 {
				t.Fatalf("trial %d: dist %v != hops %d", trial, dist, hop)
			}
			if len(path) != hop+1 {
				t.Fatalf("trial %d: path len %d != hops+1 %d", trial, len(path), hop+1)
			}
			// Path must be a chain of existing edges.
			for i := 0; i+1 < len(path); i++ {
				if !g.HasEdge(path[i], path[i+1]) {
					t.Fatalf("trial %d: path uses missing edge", trial)
				}
			}
		}
	}
}

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(5)
	if u.Sets() != 5 || u.Len() != 5 {
		t.Fatalf("init sets=%d len=%d", u.Sets(), u.Len())
	}
	if !u.Union(0, 1) || !u.Union(1, 2) {
		t.Fatal("unions should merge")
	}
	if u.Union(0, 2) {
		t.Fatal("redundant union should report false")
	}
	if !u.Connected(0, 2) || u.Connected(0, 3) {
		t.Fatal("connectivity wrong")
	}
	if u.Sets() != 3 {
		t.Fatalf("sets = %d", u.Sets())
	}
}

func TestUnionFindGrow(t *testing.T) {
	u := NewUnionFind(2)
	first := u.Grow(3)
	if first != 2 || u.Len() != 5 || u.Sets() != 5 {
		t.Fatalf("grow: first=%d len=%d sets=%d", first, u.Len(), u.Sets())
	}
	u.Union(0, 4)
	if !u.Connected(4, 0) {
		t.Fatal("grown element should union")
	}
}

func TestUnionFindMatchesComponents(t *testing.T) {
	// Property: union-find connectivity agrees with graph components for
	// random edge sets.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(40)
		g := New[int](n)
		u := NewUnionFind(n)
		for i := 0; i < n; i++ {
			g.AddVertex(i)
		}
		for i := 0; i < n; i++ {
			a, b := ID(r.Intn(n)), ID(r.Intn(n))
			g.AddEdge(a, b, 1)
			if a != b {
				u.Union(int(a), int(b))
			}
		}
		labels, _ := g.ConnectedComponents()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (labels[i] == labels[j]) != u.Connected(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphString(t *testing.T) {
	if buildPath(3).String() != "graph{V=3, E=2}" {
		t.Fatalf("String = %q", buildPath(3).String())
	}
}

func TestRemoveLastVertex(t *testing.T) {
	g := New[int](4)
	for i := 0; i < 4; i++ {
		g.AddVertex(i)
	}
	g.AddEdge(0, 3, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 1, 1)
	g.RemoveLastVertex()
	if g.NumVertices() != 3 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want only 0-1", g.NumEdges())
	}
	if g.HasEdge(0, 3) || g.HasEdge(1, 3) {
		t.Fatal("edges to removed vertex must be gone")
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("unrelated edge must survive")
	}
	// Removing an isolated vertex works too.
	g.AddVertex(9)
	g.RemoveLastVertex()
	if g.NumVertices() != 3 {
		t.Fatal("isolated removal failed")
	}
}

func TestRemoveLastVertexPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[int](0).RemoveLastVertex()
}
