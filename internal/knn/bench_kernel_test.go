package knn

import (
	"testing"

	"parmp/internal/rng"
)

// BenchmarkKernelNearest measures steady-state kd-tree queries (the
// per-node lookup inside ConnectRegion).
func BenchmarkKernelNearest(b *testing.B) {
	r := rng.New(17)
	pts := randomPoints(r, 1000, 3)
	tree := Build(pts)
	qs := randomPoints(r, 64, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Nearest(qs[i%len(qs)], 8)
	}
}

// BenchmarkKernelDynamicNearest measures the growing-set index queries
// used by incremental planners (tree + pending-buffer merge).
func BenchmarkKernelDynamicNearest(b *testing.B) {
	r := rng.New(19)
	pts := randomPoints(r, 1000, 3)
	d := NewDynamic()
	for _, p := range pts {
		d.Add(p)
	}
	qs := randomPoints(r, 64, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Nearest(qs[i%len(qs)], 8)
	}
}

// BenchmarkKernelBuild measures kd-tree construction for a large region.
func BenchmarkKernelBuild(b *testing.B) {
	r := rng.New(23)
	pts := randomPoints(r, 20000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}
