package knn

import (
	"testing"

	"parmp/internal/geom"
	"parmp/internal/rng"
)

func randomBatchPoints(r *rng.Stream, n, d int) []geom.Vec {
	pts := make([]geom.Vec, n)
	for i := range pts {
		p := make(geom.Vec, d)
		for k := range p {
			p[k] = r.Float64()
		}
		pts[i] = p
	}
	return pts
}

// TestNearestBatchMatchesNearestInto checks the batched query answers
// exactly what per-query NearestInto answers, including the self-join
// skip pattern and the total eval count.
func TestNearestBatchMatchesNearestInto(t *testing.T) {
	r := rng.New(5)
	pts := randomBatchPoints(r, 300, 3)
	tree := Build(pts)
	for _, skipStart := range []int{-1, 100} {
		queries := pts[100:140]
		var sc QueryScratch
		dst, offs, evals := tree.NearestBatch(&sc, queries, 6, skipStart, nil, nil)
		if len(offs) != len(queries)+1 {
			t.Fatalf("offs length %d, want %d", len(offs), len(queries)+1)
		}
		wantEvals := 0
		var ssc QueryScratch
		for j, q := range queries {
			skip := -1
			if skipStart >= 0 {
				skip = skipStart + j
			}
			want, ev := tree.NearestInto(&ssc, q, 6, skip, nil)
			wantEvals += ev
			got := dst[offs[j]:offs[j+1]]
			if len(got) != len(want) {
				t.Fatalf("skipStart=%d query %d: %d hits, want %d", skipStart, j, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("skipStart=%d query %d hit %d: %+v, want %+v", skipStart, j, i, got[i], want[i])
				}
			}
			if skip >= 0 {
				for _, h := range got {
					if h.Index == skip {
						t.Fatalf("query %d returned its own index %d", j, skip)
					}
				}
			}
		}
		if evals != wantEvals {
			t.Fatalf("skipStart=%d: batch evals %d, per-query sum %d", skipStart, evals, wantEvals)
		}
	}
}

// TestNearestBatchEmpty covers zero queries and an empty tree.
func TestNearestBatchEmpty(t *testing.T) {
	var sc QueryScratch
	r := rng.New(9)
	tree := Build(randomBatchPoints(r, 50, 2))
	dst, offs, evals := tree.NearestBatch(&sc, nil, 4, -1, nil, nil)
	if len(dst) != 0 || len(offs) != 1 || evals != 0 {
		t.Fatalf("empty query batch: got (%d hits, %d offs, %d evals)", len(dst), len(offs), evals)
	}
	empty := Build(nil)
	queries := []geom.Vec{geom.V(0.5, 0.5)}
	dst, offs, _ = empty.NearestBatch(&sc, queries, 4, -1, dst[:0], offs)
	if len(dst) != 0 || offs[1] != 0 {
		t.Fatalf("empty tree: got %d hits, offs[1]=%d", len(dst), offs[1])
	}
}

// TestNearestBatchSteadyStateAllocs confirms reuse of dst/offs/scratch
// makes the batch allocation-free.
func TestNearestBatchSteadyStateAllocs(t *testing.T) {
	r := rng.New(13)
	pts := randomBatchPoints(r, 400, 3)
	tree := Build(pts)
	queries := pts[50:114]
	var sc QueryScratch
	dst, offs, _ := tree.NearestBatch(&sc, queries, 8, 50, nil, nil)
	allocs := testing.AllocsPerRun(50, func() {
		dst, offs, _ = tree.NearestBatch(&sc, queries, 8, 50, dst[:0], offs)
	})
	if allocs != 0 {
		t.Fatalf("steady-state NearestBatch allocates %v per op, want 0", allocs)
	}
}
