// Package knn provides k-nearest-neighbour search over point sets: a
// kd-tree for the planners' connection phases and a brute-force reference
// used for cross-validation in tests.
//
// Restricting connection attempts to nearby samples is what makes the
// subdivision approach local; the kNN structure is rebuilt per region so
// queries never leave the owning processor. All query entry points have
// scratch-based *Into variants (see QueryScratch) that are allocation-free
// in steady state — the hot sampling/connection path runs through those.
package knn

import (
	"parmp/internal/geom"
)

// Result is one neighbour hit.
type Result struct {
	Index int     // index into the point set supplied at build time
	Dist2 float64 // squared Euclidean distance to the query
}

// resultBefore is the single ordering used everywhere in this package:
// ascending by squared distance, ties broken by ascending index. The
// deterministic tie-break means every query answer — kd-tree, brute
// force, dynamic index, with or without scratch — is a pure function of
// the point set, so planner parity tests cannot flake on equal distances.
func resultBefore(a, b Result) bool {
	if a.Dist2 != b.Dist2 {
		return a.Dist2 < b.Dist2
	}
	return a.Index < b.Index
}

// KDTree is a static kd-tree over d-dimensional points.
//
// Node storage is indexed by each subtree's median position: the node
// whose point is index[m] lives at nodes[m], and the subtree over
// index[lo:hi) is rooted at m = (lo+hi)/2. The layout is a pure function
// of (lo, hi) recursion, independent of build order, which is what lets
// BuildParallel construct disjoint subtrees concurrently and still produce
// a tree bit-identical to the sequential Build.
type KDTree struct {
	pts   []geom.Vec
	index []int    // permutation of original indices, tree order
	nodes []kdNode // nodes[m] describes the subtree whose median is index[m]
	dim   int
}

type kdNode struct {
	axis        int32
	left, right int32 // node ids (median positions), -1 for none
}

// Build constructs a kd-tree over pts. The tree keeps a reference to the
// point slice; callers must not mutate it afterwards.
func Build(pts []geom.Vec) *KDTree {
	t := &KDTree{}
	t.Reset(pts)
	return t
}

// Reset rebuilds the tree in place over a new point set, reusing the
// node and index storage from previous builds. This is the steady-state
// path for pooled arenas and the Dynamic index: after the first build of
// comparable size, rebuilding allocates nothing.
func (t *KDTree) Reset(pts []geom.Vec) {
	t.pts = pts
	if len(pts) == 0 {
		t.index = t.index[:0]
		t.nodes = t.nodes[:0]
		t.dim = 0
		return
	}
	t.dim = len(pts[0])
	t.prepare(len(pts))
	t.buildRange(0, len(pts), 0)
}

// prepare sizes the index permutation and node storage for n points,
// reusing capacity.
func (t *KDTree) prepare(n int) {
	if cap(t.index) < n {
		t.index = make([]int, n)
		t.nodes = make([]kdNode, n)
	}
	t.index = t.index[:n]
	t.nodes = t.nodes[:n]
	for i := range t.index {
		t.index[i] = i
	}
}

// buildRange arranges index[lo:hi) into kd order sequentially.
func (t *KDTree) buildRange(lo, hi, depth int) {
	for hi-lo > 0 {
		mid := t.split(lo, hi, depth)
		// Recurse into the smaller side, loop on the larger: O(log n)
		// stack depth regardless of balance.
		if mid-lo <= hi-mid-1 {
			t.buildRange(lo, mid, depth+1)
			lo = mid + 1
		} else {
			t.buildRange(mid+1, hi, depth+1)
			hi = mid
		}
		depth++
	}
}

// split sorts index[lo:hi) along the depth axis, writes the median node,
// and returns the median position. Child links are computable from the
// (lo, hi) bounds alone, so they are filled in here without visiting the
// children.
func (t *KDTree) split(lo, hi, depth int) int {
	axis := depth % t.dim
	mid := (lo + hi) / 2
	sortIndexByAxis(t.index[lo:hi], t.pts, axis)
	left, right := int32(-1), int32(-1)
	if lo < mid {
		left = int32((lo + mid) / 2)
	}
	if mid+1 < hi {
		right = int32((mid + 1 + hi) / 2)
	}
	t.nodes[mid] = kdNode{axis: int32(axis), left: left, right: right}
	return mid
}

// root returns the root node id, -1 for an empty tree.
func (t *KDTree) root() int32 {
	if len(t.index) == 0 {
		return -1
	}
	return int32(len(t.index) / 2)
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// Nearest returns up to k nearest neighbours of q, closest first (ties by
// index), along with the number of distance evaluations performed (for
// work metering). It allocates its result and a transient scratch; hot
// paths should hold a QueryScratch and call NearestInto instead.
func (t *KDTree) Nearest(q geom.Vec, k int) ([]Result, int) {
	var sc QueryScratch
	return t.NearestInto(&sc, q, k, -1, nil)
}

// NearestInto appends up to k nearest neighbours of q to dst, closest
// first (ties broken by ascending index), and returns the extended slice
// plus the number of distance evaluations. skip, when >= 0, excludes that
// point index from the results (the query point itself in self-join
// connection queries). With a reused scratch and a reused dst, the query
// performs no allocations in steady state.
func (t *KDTree) NearestInto(sc *QueryScratch, q geom.Vec, k, skip int, dst []Result) ([]Result, int) {
	if k <= 0 || len(t.pts) == 0 {
		return dst, 0
	}
	evals := t.searchHeap(sc, q, k, skip)
	return sc.drainSorted(dst), evals
}

// searchHeap runs the kd traversal, leaving the k nearest results in
// sc's bounded max-heap (unsorted). Split out so Dynamic can merge its
// pending-buffer scan into the same heap before sorting once.
func (t *KDTree) searchHeap(sc *QueryScratch, q geom.Vec, k, skip int) int {
	sc.reset(k)
	evals := 0
	node := t.root()
	for {
		// Descend toward q, evaluating each node point and deferring the
		// far child with its splitting-plane distance for later pruning.
		for node >= 0 {
			n := t.nodes[node]
			pi := t.index[node]
			d2 := q.Dist2(t.pts[pi])
			evals++
			if pi != skip {
				sc.offer(Result{Index: pi, Dist2: d2})
			}
			delta := q[n.axis] - t.pts[pi][n.axis]
			near, far := n.left, n.right
			if delta > 0 {
				near, far = n.right, n.left
			}
			if far >= 0 {
				sc.pushVisit(far, delta*delta)
			}
			node = near
		}
		// Resume at the best-deferred far subtree that can still improve
		// the heap. <= admits far-side points at exactly the current worst
		// distance, which the index tie-break may prefer — required for
		// exact agreement with the brute-force reference.
		node = -1
		for len(sc.stack) > 0 {
			f := sc.popVisit()
			if !sc.full() || f.dist2 <= sc.worst().Dist2 {
				node = f.node
				break
			}
		}
		if node < 0 {
			return evals
		}
	}
}

// NearestExcluding behaves like Nearest but skips any index for which
// exclude returns true (e.g. the query point itself).
func (t *KDTree) NearestExcluding(q geom.Vec, k int, exclude func(int) bool) ([]Result, int) {
	if k <= 0 || len(t.pts) == 0 {
		return nil, 0
	}
	if exclude == nil {
		return t.Nearest(q, k)
	}
	// In planner usage exclude matches exactly one point (the query
	// itself), so one extra candidate is sufficient.
	res, evals := t.Nearest(q, k+1)
	out := res[:0]
	for _, r := range res {
		if exclude(r.Index) {
			continue
		}
		out = append(out, r)
		if len(out) == k {
			break
		}
	}
	return out, evals
}
