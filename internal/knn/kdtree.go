// Package knn provides k-nearest-neighbour search over point sets: a
// kd-tree for the planners' connection phases and a brute-force reference
// used for cross-validation in tests.
//
// Restricting connection attempts to nearby samples is what makes the
// subdivision approach local; the kNN structure is rebuilt per region so
// queries never leave the owning processor.
package knn

import (
	"container/heap"
	"sort"

	"parmp/internal/geom"
)

// Result is one neighbour hit.
type Result struct {
	Index int     // index into the point set supplied at build time
	Dist2 float64 // squared Euclidean distance to the query
}

// KDTree is a static kd-tree over d-dimensional points.
type KDTree struct {
	pts   []geom.Vec
	index []int // permutation of original indices, tree order
	nodes []kdNode
	dim   int
}

type kdNode struct {
	axis        int
	left, right int // node indices, -1 for leaf children
	point       int // position into index
}

// Build constructs a kd-tree over pts. The tree keeps a reference to the
// point slice; callers must not mutate it afterwards.
func Build(pts []geom.Vec) *KDTree {
	t := &KDTree{pts: pts}
	if len(pts) == 0 {
		return t
	}
	t.dim = len(pts[0])
	t.index = make([]int, len(pts))
	for i := range t.index {
		t.index[i] = i
	}
	t.nodes = make([]kdNode, 0, len(pts))
	t.build(0, len(pts), 0)
	return t
}

// build recursively arranges index[lo:hi) and returns the node id.
func (t *KDTree) build(lo, hi, depth int) int {
	if lo >= hi {
		return -1
	}
	axis := depth % t.dim
	mid := (lo + hi) / 2
	// Median split via full sort of the sub-slice: O(n log^2 n) total,
	// fine for per-region point counts.
	sub := t.index[lo:hi]
	sort.Slice(sub, func(i, j int) bool {
		return t.pts[sub[i]][axis] < t.pts[sub[j]][axis]
	})
	id := len(t.nodes)
	t.nodes = append(t.nodes, kdNode{axis: axis, point: mid, left: -1, right: -1})
	left := t.build(lo, mid, depth+1)
	right := t.build(mid+1, hi, depth+1)
	t.nodes[id].left = left
	t.nodes[id].right = right
	return id
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// maxHeap of results ordered by Dist2 (largest on top).
type maxHeap []Result

func (h maxHeap) Len() int           { return len(h) }
func (h maxHeap) Less(i, j int) bool { return h[i].Dist2 > h[j].Dist2 }
func (h maxHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *maxHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Nearest returns up to k nearest neighbours of q, closest first, along
// with the number of distance evaluations performed (for work metering).
func (t *KDTree) Nearest(q geom.Vec, k int) ([]Result, int) {
	if k <= 0 || len(t.pts) == 0 {
		return nil, 0
	}
	h := make(maxHeap, 0, k+1)
	evals := 0
	var visit func(node int)
	visit = func(node int) {
		if node < 0 {
			return
		}
		n := t.nodes[node]
		pi := t.index[n.point]
		d2 := q.Dist2(t.pts[pi])
		evals++
		if len(h) < k {
			heap.Push(&h, Result{Index: pi, Dist2: d2})
		} else if d2 < h[0].Dist2 {
			h[0] = Result{Index: pi, Dist2: d2}
			heap.Fix(&h, 0)
		}
		delta := q[n.axis] - t.pts[pi][n.axis]
		near, far := n.left, n.right
		if delta > 0 {
			near, far = n.right, n.left
		}
		visit(near)
		// Prune the far side if the splitting plane is farther than the
		// current kth-best distance.
		if len(h) < k || delta*delta < h[0].Dist2 {
			visit(far)
		}
	}
	visit(0)
	out := make([]Result, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Result)
	}
	return out, evals
}

// NearestExcluding behaves like Nearest but skips any index for which
// exclude returns true (e.g. the query point itself).
func (t *KDTree) NearestExcluding(q geom.Vec, k int, exclude func(int) bool) ([]Result, int) {
	if k <= 0 || len(t.pts) == 0 {
		return nil, 0
	}
	res, evals := t.Nearest(q, k+countExcludable(t, exclude, k))
	out := res[:0]
	for _, r := range res {
		if exclude != nil && exclude(r.Index) {
			continue
		}
		out = append(out, r)
		if len(out) == k {
			break
		}
	}
	return out, evals
}

// countExcludable bounds how many extra hits to request: in planner usage
// exclude matches exactly one point (the query itself), so one extra is
// sufficient; a nil exclude needs none.
func countExcludable(_ *KDTree, exclude func(int) bool, _ int) int {
	if exclude == nil {
		return 0
	}
	return 1
}
