package knn

import (
	"sort"

	"parmp/internal/geom"
)

// Dynamic is a nearest-neighbour index for growing point sets: a kd-tree
// over the bulk of the points plus a linear-scanned pending buffer.
// Inserts are O(1) amortized; when the buffer outgrows a fraction of the
// tree the structure rebuilds. This is the standard technique for
// incremental planners (RRT trees) whose point sets only ever grow.
type Dynamic struct {
	pts     []geom.Vec
	tree    *KDTree
	treeLen int // how many of pts the tree covers
}

// NewDynamic returns an empty index.
func NewDynamic() *Dynamic { return &Dynamic{} }

// Len returns the number of indexed points.
func (d *Dynamic) Len() int { return len(d.pts) }

// Add inserts p and returns its index.
func (d *Dynamic) Add(p geom.Vec) int {
	d.pts = append(d.pts, p)
	pending := len(d.pts) - d.treeLen
	if pending > 32 && pending > d.treeLen/2 {
		d.rebuild()
	}
	return len(d.pts) - 1
}

func (d *Dynamic) rebuild() {
	d.tree = Build(d.pts[:len(d.pts):len(d.pts)])
	d.treeLen = len(d.pts)
}

// Nearest returns up to k nearest neighbours of q, closest first, along
// with the number of distance evaluations performed.
func (d *Dynamic) Nearest(q geom.Vec, k int) ([]Result, int) {
	if k <= 0 || len(d.pts) == 0 {
		return nil, 0
	}
	var out []Result
	evals := 0
	if d.tree != nil {
		hits, e := d.tree.Nearest(q, k)
		out = append(out, hits...)
		evals += e
	}
	// Pending buffer: linear scan.
	for i := d.treeLen; i < len(d.pts); i++ {
		out = append(out, Result{Index: i, Dist2: q.Dist2(d.pts[i])})
		evals++
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist2 != out[b].Dist2 {
			return out[a].Dist2 < out[b].Dist2
		}
		return out[a].Index < out[b].Index
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, evals
}
