package knn

import (
	"parmp/internal/geom"
)

// Default rebuild thresholds for Dynamic: a rebuild happens when more
// than DefaultRebuildMin points are pending AND the pending buffer
// exceeds DefaultRebuildFrac of the tree size.
const (
	DefaultRebuildMin  = 32
	DefaultRebuildFrac = 0.5
)

// Dynamic is a nearest-neighbour index for growing point sets: a kd-tree
// over the bulk of the points plus a linear-scanned pending buffer.
// Inserts are O(1) amortized; when the buffer outgrows a fraction of the
// tree the structure rebuilds (in place, reusing tree storage). This is
// the standard technique for incremental planners (RRT trees) whose point
// sets only ever grow.
type Dynamic struct {
	pts     []geom.Vec
	tree    KDTree
	treeLen int // how many of pts the tree covers

	// rebuildMin and rebuildFrac tune the rebuild schedule; see
	// NewDynamicTuned. Lower thresholds trade insert cost for query
	// speed (shorter pending scans).
	rebuildMin  int
	rebuildFrac float64
}

// NewDynamic returns an empty index with the default rebuild schedule.
func NewDynamic() *Dynamic {
	return NewDynamicTuned(DefaultRebuildMin, DefaultRebuildFrac)
}

// NewDynamicTuned returns an empty index that rebuilds its tree when more
// than min points are pending and the pending buffer exceeds frac of the
// tree size. Non-positive arguments take the package defaults.
func NewDynamicTuned(min int, frac float64) *Dynamic {
	if min <= 0 {
		min = DefaultRebuildMin
	}
	if frac <= 0 {
		frac = DefaultRebuildFrac
	}
	return &Dynamic{rebuildMin: min, rebuildFrac: frac}
}

// Len returns the number of indexed points.
func (d *Dynamic) Len() int { return len(d.pts) }

// Add inserts p and returns its index.
func (d *Dynamic) Add(p geom.Vec) int {
	d.pts = append(d.pts, p)
	pending := len(d.pts) - d.treeLen
	if pending > d.rebuildMin && float64(pending) > float64(d.treeLen)*d.rebuildFrac {
		d.rebuild()
	}
	return len(d.pts) - 1
}

func (d *Dynamic) rebuild() {
	d.tree.Reset(d.pts[:len(d.pts):len(d.pts)])
	d.treeLen = len(d.pts)
}

// Nearest returns up to k nearest neighbours of q, closest first (ties
// broken by ascending index so parity tests cannot flake on equal
// distances), along with the number of distance evaluations performed.
func (d *Dynamic) Nearest(q geom.Vec, k int) ([]Result, int) {
	var sc QueryScratch
	return d.NearestInto(&sc, q, k, nil)
}

// NearestInto is Nearest appending into dst via a reusable scratch:
// tree hits and the pending-buffer scan merge in the scratch's bounded
// heap, sorted once — allocation-free in steady state.
func (d *Dynamic) NearestInto(sc *QueryScratch, q geom.Vec, k int, dst []Result) ([]Result, int) {
	if k <= 0 || len(d.pts) == 0 {
		return dst, 0
	}
	var evals int
	if d.treeLen > 0 {
		evals = d.tree.searchHeap(sc, q, k, -1)
	} else {
		sc.reset(k)
	}
	// Pending buffer: linear scan into the same heap.
	for i := d.treeLen; i < len(d.pts); i++ {
		sc.offer(Result{Index: i, Dist2: q.Dist2(d.pts[i])})
		evals++
	}
	return sc.drainSorted(dst), evals
}
