package knn

import (
	"runtime"
	"sync"

	"parmp/internal/geom"
)

// parallelCutoff is the subtree size below which BuildParallel stops
// spawning and builds inline; small subtrees cost less than goroutine
// handoff.
const parallelCutoff = 2048

// BuildParallel constructs the same tree as Build using up to workers
// goroutines (<= 0 means GOMAXPROCS). The median-position node layout
// makes subtree builds write disjoint index and node ranges, so the
// result is bit-identical to the sequential build — large-region
// connection phases get a faster build with no loss of determinism.
func BuildParallel(pts []geom.Vec, workers int) *KDTree {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t := &KDTree{}
	if len(pts) < 2*parallelCutoff || workers <= 1 {
		t.Reset(pts)
		return t
	}
	t.pts = pts
	t.dim = len(pts[0])
	t.prepare(len(pts))

	// Counting semaphore bounds concurrent builders; a subtree spawns its
	// left half only when a slot is free, otherwise it builds inline.
	slots := make(chan struct{}, workers-1)
	var wg sync.WaitGroup
	var buildPar func(lo, hi, depth int)
	buildPar = func(lo, hi, depth int) {
		for hi-lo > parallelCutoff {
			mid := t.split(lo, hi, depth)
			select {
			case slots <- struct{}{}:
				wg.Add(1)
				go func(lo, hi, depth int) {
					defer wg.Done()
					buildPar(lo, hi, depth)
					<-slots
				}(lo, mid, depth+1)
			default:
				buildPar(lo, mid, depth+1)
			}
			lo = mid + 1
			depth++
		}
		t.buildRange(lo, hi, depth)
	}
	buildPar(0, len(pts), 0)
	wg.Wait()
	return t
}
