package knn

import (
	"parmp/internal/geom"
)

// BruteNearest returns up to k nearest neighbours of q among pts by
// exhaustive scan, closest first (ties by index). It is the reference
// implementation the kd-tree is validated against, and the fallback for
// tiny point sets where tree construction is not worth it.
func BruteNearest(pts []geom.Vec, q geom.Vec, k int) []Result {
	var sc QueryScratch
	out, _ := BruteNearestInto(&sc, pts, q, k, -1, nil)
	return out
}

// BruteNearestInto appends up to k nearest neighbours of q to dst,
// closest first (ties by index), skipping point index skip when >= 0. It
// uses the scratch's bounded heap, so with reused scratch and dst the
// scan is allocation-free. The eval count (len(pts), minus the skip) is
// returned for work metering.
func BruteNearestInto(sc *QueryScratch, pts []geom.Vec, q geom.Vec, k, skip int, dst []Result) ([]Result, int) {
	if k <= 0 {
		return dst, 0
	}
	sc.reset(k)
	evals := 0
	for i, p := range pts {
		if i == skip {
			continue
		}
		sc.offer(Result{Index: i, Dist2: q.Dist2(p)})
		evals++
	}
	return sc.drainSorted(dst), evals
}

// BruteNearestExcluding is BruteNearest with an index filter.
func BruteNearestExcluding(pts []geom.Vec, q geom.Vec, k int, exclude func(int) bool) []Result {
	if k <= 0 {
		return nil
	}
	var sc QueryScratch
	sc.reset(k)
	for i, p := range pts {
		if exclude != nil && exclude(i) {
			continue
		}
		sc.offer(Result{Index: i, Dist2: q.Dist2(p)})
	}
	return sc.drainSorted(nil)
}
