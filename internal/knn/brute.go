package knn

import (
	"sort"

	"parmp/internal/geom"
)

// BruteNearest returns up to k nearest neighbours of q among pts by
// exhaustive scan, closest first. It is the reference implementation the
// kd-tree is validated against, and the fallback for tiny point sets where
// tree construction is not worth it.
func BruteNearest(pts []geom.Vec, q geom.Vec, k int) []Result {
	return BruteNearestExcluding(pts, q, k, nil)
}

// BruteNearestExcluding is BruteNearest with an index filter.
func BruteNearestExcluding(pts []geom.Vec, q geom.Vec, k int, exclude func(int) bool) []Result {
	if k <= 0 {
		return nil
	}
	res := make([]Result, 0, len(pts))
	for i, p := range pts {
		if exclude != nil && exclude(i) {
			continue
		}
		res = append(res, Result{Index: i, Dist2: q.Dist2(p)})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Dist2 != res[j].Dist2 {
			return res[i].Dist2 < res[j].Dist2
		}
		return res[i].Index < res[j].Index
	})
	if len(res) > k {
		res = res[:k]
	}
	return res
}
