package knn

import (
	"testing"

	"parmp/internal/geom"
	"parmp/internal/rng"
)

// resultsEqual requires exact (Index, Dist2) agreement — the
// deterministic tie-break makes index-level comparison valid.
func resultsEqual(t *testing.T, ctx string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s rank %d: got %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestNearestIntoMatchesBruteExact is the scratch-kernel property test:
// the pooled kd-tree query must agree with the fresh brute-force
// reference index-for-index, across reuses of the same scratch (stale
// state from a previous query must not leak into the next).
func TestNearestIntoMatchesBruteExact(t *testing.T) {
	r := rng.New(41)
	var sc QueryScratch // deliberately shared across all trials
	var dst []Result
	for trial := 0; trial < 200; trial++ {
		d := 2 + r.Intn(4)
		n := 1 + r.Intn(150)
		k := 1 + r.Intn(12)
		pts := randomPoints(r, n, d)
		tree := Build(pts)
		q := randomPoints(r, 1, d)[0]

		dst, _ = tree.NearestInto(&sc, q, k, -1, dst[:0])
		want := BruteNearest(pts, q, k)
		resultsEqual(t, "nearest", dst, want)

		// Self-exclusion against the func-based brute reference.
		skip := r.Intn(n)
		dst, _ = tree.NearestInto(&sc, pts[skip], k, skip, dst[:0])
		wantEx := BruteNearestExcluding(pts, pts[skip], k, func(j int) bool { return j == skip })
		resultsEqual(t, "nearest-skip", dst, wantEx)
	}
}

// TestNearestIntoTieBreak pins the deterministic tie-break: equidistant
// points must come back ordered by index, and the kept k-set must be the
// lexicographically smallest under (Dist2, Index).
func TestNearestIntoTieBreak(t *testing.T) {
	// Eight points all at distance 1 from the origin.
	pts := []geom.Vec{
		geom.V(1, 0), geom.V(-1, 0), geom.V(0, 1), geom.V(0, -1),
		geom.V(1, 0), geom.V(-1, 0), geom.V(0, 1), geom.V(0, -1),
	}
	tree := Build(pts)
	var sc QueryScratch
	got, _ := tree.NearestInto(&sc, geom.V(0, 0), 5, -1, nil)
	for i, r := range got {
		if r.Index != i {
			t.Fatalf("rank %d: index %d, want %d (ordered tie-break)", i, r.Index, i)
		}
	}
	dyn := NewDynamic()
	for _, p := range pts {
		dyn.Add(p)
	}
	gotDyn, _ := dyn.Nearest(geom.V(0, 0), 5)
	resultsEqual(t, "dynamic-tie", gotDyn, got)
}

// TestDynamicNearestIntoMatchesBrute cross-validates the growing-set
// index (tree + pending merge in one heap) against brute force at every
// growth stage, with a shared scratch.
func TestDynamicNearestIntoMatchesBrute(t *testing.T) {
	r := rng.New(43)
	d := NewDynamicTuned(8, 0.25)
	var sc QueryScratch
	var dst []Result
	var pts []geom.Vec
	for i := 0; i < 300; i++ {
		p := randomPoints(r, 1, 3)[0]
		d.Add(p)
		pts = append(pts, p)
		if i%7 != 0 {
			continue
		}
		q := randomPoints(r, 1, 3)[0]
		dst, _ = d.NearestInto(&sc, q, 6, dst[:0])
		want := BruteNearest(pts, q, 6)
		resultsEqual(t, "dynamic", dst, want)
	}
}

// TestDynamicRebuildThreshold verifies the configurable rebuild
// schedule: with min=4, frac=1.0 a rebuild happens only once pending
// exceeds both 4 and the tree length.
func TestDynamicRebuildThreshold(t *testing.T) {
	r := rng.New(47)
	d := NewDynamicTuned(4, 1.0)
	for i := 0; i < 5; i++ {
		d.Add(randomPoints(r, 1, 2)[0])
	}
	if d.treeLen != 5 {
		t.Fatalf("after 5 adds (pending 5 > min 4, > 0*1.0): treeLen = %d, want 5", d.treeLen)
	}
	for i := 0; i < 5; i++ {
		d.Add(randomPoints(r, 1, 2)[0])
	}
	// pending = 5 is not > treeLen*1.0 = 5: no rebuild yet.
	if d.treeLen != 5 {
		t.Fatalf("pending == treeLen should not rebuild: treeLen = %d", d.treeLen)
	}
	d.Add(randomPoints(r, 1, 2)[0])
	if d.treeLen != 11 {
		t.Fatalf("pending 6 > treeLen 5 should rebuild: treeLen = %d", d.treeLen)
	}
}

// TestBuildParallelIdentical requires the parallel build to produce a
// bit-identical tree (same index permutation, same node records) so
// planner output cannot depend on the build path.
func TestBuildParallelIdentical(t *testing.T) {
	r := rng.New(53)
	pts := randomPoints(r, 3*parallelCutoff, 3)
	seq := Build(pts)
	par := BuildParallel(pts, 4)
	if len(seq.index) != len(par.index) {
		t.Fatalf("index length mismatch: %d vs %d", len(seq.index), len(par.index))
	}
	for i := range seq.index {
		if seq.index[i] != par.index[i] {
			t.Fatalf("index[%d]: %d vs %d", i, seq.index[i], par.index[i])
		}
		if seq.nodes[i] != par.nodes[i] {
			t.Fatalf("nodes[%d]: %+v vs %+v", i, seq.nodes[i], par.nodes[i])
		}
	}
	// And the queries agree with brute force.
	var sc QueryScratch
	for trial := 0; trial < 20; trial++ {
		q := randomPoints(r, 1, 3)[0]
		got, _ := par.NearestInto(&sc, q, 7, -1, nil)
		resultsEqual(t, "parallel-query", got, BruteNearest(pts, q, 7))
	}
}

// TestResetReusesStorage verifies the in-place rebuild path keeps
// answering correctly when the tree shrinks and regrows.
func TestResetReusesStorage(t *testing.T) {
	r := rng.New(59)
	var tree KDTree
	var sc QueryScratch
	for _, n := range []int{100, 10, 250, 1, 77} {
		pts := randomPoints(r, n, 2)
		tree.Reset(pts)
		q := randomPoints(r, 1, 2)[0]
		got, _ := tree.NearestInto(&sc, q, 5, -1, nil)
		resultsEqual(t, "reset", got, BruteNearest(pts, q, 5))
	}
}

// TestRadiusIntoMatchesBrute cross-validates the scratch radius query.
func TestRadiusIntoMatchesBrute(t *testing.T) {
	r := rng.New(61)
	var sc QueryScratch
	var dst []Result
	for trial := 0; trial < 60; trial++ {
		pts := randomPoints(r, 1+r.Intn(120), 3)
		tree := Build(pts)
		q := randomPoints(r, 1, 3)[0]
		radius := r.Float64()
		dst, _ = tree.RadiusInto(&sc, q, radius, dst[:0])
		resultsEqual(t, "radius", dst, BruteRadius(pts, q, radius))
	}
}

// FuzzNearestInto drives the scratch query with fuzzer-chosen geometry,
// asserting exact agreement with brute force.
func FuzzNearestInto(f *testing.F) {
	f.Add(uint64(1), 10, 3)
	f.Add(uint64(99), 1, 1)
	f.Add(uint64(7), 200, 12)
	f.Fuzz(func(t *testing.T, seed uint64, n, k int) {
		if n <= 0 || n > 500 || k <= 0 || k > 50 {
			t.Skip()
		}
		r := rng.New(seed)
		pts := randomPoints(r, n, 2+int(seed%3))
		tree := Build(pts)
		var sc QueryScratch
		q := randomPoints(r, 1, 2+int(seed%3))[0]
		got, _ := tree.NearestInto(&sc, q, k, -1, nil)
		want := BruteNearest(pts, q, k)
		if len(got) != len(want) {
			t.Fatalf("got %d results, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rank %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
	})
}

// BenchmarkKernelNearestInto is the steady-state pooled query: reused
// scratch, reused result buffer — the allocation target is zero.
func BenchmarkKernelNearestInto(b *testing.B) {
	r := rng.New(17)
	pts := randomPoints(r, 1000, 3)
	tree := Build(pts)
	qs := randomPoints(r, 64, 3)
	var sc QueryScratch
	var dst []Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = tree.NearestInto(&sc, qs[i%len(qs)], 8, -1, dst[:0])
	}
}

// BenchmarkKernelBuildParallel measures the concurrent build of a
// large-region tree.
func BenchmarkKernelBuildParallel(b *testing.B) {
	r := rng.New(23)
	pts := randomPoints(r, 20000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildParallel(pts, 0)
	}
}
