package knn

import "parmp/internal/geom"

// QueryScratch holds the reusable state of one in-flight kNN query: the
// bounded result heap and the deferred-subtree visit stack. One scratch
// per worker (see the planner arenas) makes steady-state queries
// allocation-free; the zero value is ready to use. A scratch must not be
// shared by concurrent queries.
type QueryScratch struct {
	k     int
	heap  []Result     // bounded max-heap ordered by (Dist2, Index), worst on top
	stack []visitFrame // far subtrees deferred during descent
}

type visitFrame struct {
	node  int32
	dist2 float64 // squared distance from q to the subtree's splitting plane
}

func (sc *QueryScratch) reset(k int) {
	sc.k = k
	sc.heap = sc.heap[:0]
	sc.stack = sc.stack[:0]
}

func (sc *QueryScratch) full() bool    { return len(sc.heap) >= sc.k }
func (sc *QueryScratch) worst() Result { return sc.heap[0] }

// offer inserts r when the heap is not full or r beats the current worst
// under the (Dist2, Index) order.
func (sc *QueryScratch) offer(r Result) {
	if len(sc.heap) < sc.k {
		sc.heap = append(sc.heap, r)
		sc.siftUp(len(sc.heap) - 1)
		return
	}
	if resultBefore(r, sc.heap[0]) {
		sc.heap[0] = r
		sc.siftDown(0, len(sc.heap))
	}
}

// heapAfter orders the max-heap: the element that sorts LATER under
// resultBefore is closer to the top.
func (sc *QueryScratch) heapAfter(i, j int) bool { return resultBefore(sc.heap[j], sc.heap[i]) }

func (sc *QueryScratch) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !sc.heapAfter(i, parent) {
			return
		}
		sc.heap[i], sc.heap[parent] = sc.heap[parent], sc.heap[i]
		i = parent
	}
}

func (sc *QueryScratch) siftDown(i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && sc.heapAfter(r, l) {
			big = r
		}
		if !sc.heapAfter(big, i) {
			return
		}
		sc.heap[i], sc.heap[big] = sc.heap[big], sc.heap[i]
		i = big
	}
}

// drainSorted heap-sorts the collected results ascending by
// (Dist2, Index) and appends them to dst, leaving the scratch reusable.
func (sc *QueryScratch) drainSorted(dst []Result) []Result {
	for n := len(sc.heap) - 1; n > 0; n-- {
		sc.heap[0], sc.heap[n] = sc.heap[n], sc.heap[0]
		sc.siftDown(0, n)
	}
	return append(dst, sc.heap...)
}

func (sc *QueryScratch) pushVisit(node int32, dist2 float64) {
	sc.stack = append(sc.stack, visitFrame{node: node, dist2: dist2})
}

func (sc *QueryScratch) popVisit() visitFrame {
	f := sc.stack[len(sc.stack)-1]
	sc.stack = sc.stack[:len(sc.stack)-1]
	return f
}

// sortIndexByAxis sorts idx ascending by (pts[i][axis], i) with an
// allocation-free introsort-style quicksort (median-of-three pivots,
// insertion sort below a cutoff). The explicit index tie-break makes tree
// shape a pure function of the point set, independent of sort internals.
func sortIndexByAxis(idx []int, pts []geom.Vec, axis int) {
	for len(idx) > 12 {
		mid := medianOfThree(idx, pts, axis)
		p := partitionIndex(idx, pts, axis, mid)
		// Recurse into the smaller half, loop on the larger.
		if p < len(idx)-p-1 {
			sortIndexByAxis(idx[:p], pts, axis)
			idx = idx[p+1:]
		} else {
			sortIndexByAxis(idx[p+1:], pts, axis)
			idx = idx[:p]
		}
	}
	// Insertion sort for small runs.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && axisBefore(pts, axis, idx[j], idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// axisBefore orders point indices by (coordinate, index).
func axisBefore(pts []geom.Vec, axis, a, b int) bool {
	ca, cb := pts[a][axis], pts[b][axis]
	if ca != cb {
		return ca < cb
	}
	return a < b
}

// medianOfThree moves the median of idx's first/middle/last elements to
// position 0 (the pivot slot) and returns its value.
func medianOfThree(idx []int, pts []geom.Vec, axis int) int {
	lo, mid, hi := 0, len(idx)/2, len(idx)-1
	if axisBefore(pts, axis, idx[mid], idx[lo]) {
		idx[mid], idx[lo] = idx[lo], idx[mid]
	}
	if axisBefore(pts, axis, idx[hi], idx[mid]) {
		idx[hi], idx[mid] = idx[mid], idx[hi]
		if axisBefore(pts, axis, idx[mid], idx[lo]) {
			idx[mid], idx[lo] = idx[lo], idx[mid]
		}
	}
	idx[0], idx[mid] = idx[mid], idx[0]
	return idx[0]
}

// partitionIndex partitions idx around the pivot at position 0 and
// returns the pivot's final position.
func partitionIndex(idx []int, pts []geom.Vec, axis, pivot int) int {
	store := 1
	for i := 1; i < len(idx); i++ {
		if axisBefore(pts, axis, idx[i], pivot) {
			idx[i], idx[store] = idx[store], idx[i]
			store++
		}
	}
	idx[0], idx[store-1] = idx[store-1], idx[0]
	return store - 1
}
