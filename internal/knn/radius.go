package knn

import (
	"sort"

	"parmp/internal/geom"
)

// Radius returns all points within distance radius of q, closest first,
// along with the number of distance evaluations performed. It is the
// connection primitive for radius-based roadmap variants (PRM*-style
// neighbourhoods).
func (t *KDTree) Radius(q geom.Vec, radius float64) ([]Result, int) {
	if len(t.pts) == 0 || radius < 0 {
		return nil, 0
	}
	r2 := radius * radius
	var out []Result
	evals := 0
	var visit func(node int)
	visit = func(node int) {
		if node < 0 {
			return
		}
		n := t.nodes[node]
		pi := t.index[n.point]
		d2 := q.Dist2(t.pts[pi])
		evals++
		if d2 <= r2 {
			out = append(out, Result{Index: pi, Dist2: d2})
		}
		delta := q[n.axis] - t.pts[pi][n.axis]
		near, far := n.left, n.right
		if delta > 0 {
			near, far = n.right, n.left
		}
		visit(near)
		if delta*delta <= r2 {
			visit(far)
		}
	}
	visit(0)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist2 != out[j].Dist2 {
			return out[i].Dist2 < out[j].Dist2
		}
		return out[i].Index < out[j].Index
	})
	return out, evals
}

// BruteRadius is the exhaustive reference for Radius.
func BruteRadius(pts []geom.Vec, q geom.Vec, radius float64) []Result {
	if radius < 0 {
		return nil
	}
	r2 := radius * radius
	var out []Result
	for i, p := range pts {
		if d2 := q.Dist2(p); d2 <= r2 {
			out = append(out, Result{Index: i, Dist2: d2})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist2 != out[j].Dist2 {
			return out[i].Dist2 < out[j].Dist2
		}
		return out[i].Index < out[j].Index
	})
	return out
}
