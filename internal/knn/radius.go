package knn

import (
	"parmp/internal/geom"
)

// Radius returns all points within distance radius of q, closest first
// (ties by index), along with the number of distance evaluations
// performed. It is the connection primitive for radius-based roadmap
// variants (PRM*-style neighbourhoods).
func (t *KDTree) Radius(q geom.Vec, radius float64) ([]Result, int) {
	var sc QueryScratch
	return t.RadiusInto(&sc, q, radius, nil)
}

// RadiusInto appends all points within radius of q to dst, closest first
// (ties by index). The scratch's visit stack is reused; result sorting
// happens in the appended dst segment, so with a reused dst the query is
// allocation-free in steady state.
func (t *KDTree) RadiusInto(sc *QueryScratch, q geom.Vec, radius float64, dst []Result) ([]Result, int) {
	if len(t.pts) == 0 || radius < 0 {
		return dst, 0
	}
	r2 := radius * radius
	base := len(dst)
	evals := 0
	sc.stack = sc.stack[:0]
	node := t.root()
	for {
		for node >= 0 {
			n := t.nodes[node]
			pi := t.index[node]
			d2 := q.Dist2(t.pts[pi])
			evals++
			if d2 <= r2 {
				dst = append(dst, Result{Index: pi, Dist2: d2})
			}
			delta := q[n.axis] - t.pts[pi][n.axis]
			near, far := n.left, n.right
			if delta > 0 {
				near, far = n.right, n.left
			}
			if far >= 0 && delta*delta <= r2 {
				sc.pushVisit(far, 0)
			}
			node = near
		}
		if len(sc.stack) == 0 {
			break
		}
		node = sc.popVisit().node
	}
	sortResults(dst[base:])
	return dst, evals
}

// sortResults orders results ascending by (Dist2, Index) without
// allocating: insertion sort for short runs, heapsort above.
func sortResults(rs []Result) {
	if len(rs) <= 16 {
		for i := 1; i < len(rs); i++ {
			for j := i; j > 0 && resultBefore(rs[j], rs[j-1]); j-- {
				rs[j], rs[j-1] = rs[j-1], rs[j]
			}
		}
		return
	}
	// Max-heapify then pop: worst element (last under resultBefore) rises.
	after := func(i, j int) bool { return resultBefore(rs[j], rs[i]) }
	siftDown := func(i, n int) {
		for {
			l := 2*i + 1
			if l >= n {
				return
			}
			big := l
			if r := l + 1; r < n && after(r, l) {
				big = r
			}
			if !after(big, i) {
				return
			}
			rs[i], rs[big] = rs[big], rs[i]
			i = big
		}
	}
	for i := len(rs)/2 - 1; i >= 0; i-- {
		siftDown(i, len(rs))
	}
	for n := len(rs) - 1; n > 0; n-- {
		rs[0], rs[n] = rs[n], rs[0]
		siftDown(0, n)
	}
}

// BruteRadius is the exhaustive reference for Radius.
func BruteRadius(pts []geom.Vec, q geom.Vec, radius float64) []Result {
	return BruteRadiusInto(pts, q, radius, nil)
}

// BruteRadiusInto is BruteRadius appending into dst, so a reused dst
// makes the scan allocation-free in steady state.
func BruteRadiusInto(pts []geom.Vec, q geom.Vec, radius float64, dst []Result) []Result {
	if radius < 0 {
		return dst
	}
	r2 := radius * radius
	base := len(dst)
	for i, p := range pts {
		if d2 := q.Dist2(p); d2 <= r2 {
			dst = append(dst, Result{Index: i, Dist2: d2})
		}
	}
	sortResults(dst[base:])
	return dst
}
