package knn

import (
	"parmp/internal/geom"
)

// NearestBatch answers a batch of kNN queries through one scratch,
// amortizing the visit stack, heap and result storage across the whole
// batch. Query j's hits are appended flat to dst and delimited by offs:
// after the call, dst[offs[j]:offs[j+1]] holds query j's neighbours,
// closest first with the package's deterministic tie-break. Each query
// answers exactly what NearestInto answers for the same arguments.
//
// skipStart, when >= 0, excludes point index skipStart+j from query j —
// the self-join pattern of incremental roadmap connection, where query
// j is the point at index skipStart+j itself. Negative skipStart
// excludes nothing.
//
// offs is resized (reusing capacity) to len(queries)+1; the returned
// evals is the total number of distance evaluations. With reused dst
// and offs the batch performs no allocations in steady state.
func (t *KDTree) NearestBatch(sc *QueryScratch, queries []geom.Vec, k, skipStart int, dst []Result, offs []int) ([]Result, []int, int) {
	if cap(offs) < len(queries)+1 {
		offs = make([]int, len(queries)+1)
	}
	offs = offs[:len(queries)+1]
	offs[0] = len(dst)
	evals := 0
	for j, q := range queries {
		skip := -1
		if skipStart >= 0 {
			skip = skipStart + j
		}
		var ev int
		dst, ev = t.NearestInto(sc, q, k, skip, dst)
		evals += ev
		offs[j+1] = len(dst)
	}
	return dst, offs, evals
}
