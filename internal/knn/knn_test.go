package knn

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"parmp/internal/geom"
	"parmp/internal/rng"
)

func randomPoints(r *rng.Stream, n, d int) []geom.Vec {
	pts := make([]geom.Vec, n)
	for i := range pts {
		p := make(geom.Vec, d)
		for j := range p {
			p[j] = r.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestKDTreeMatchesBrute(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 40; trial++ {
		d := 2 + r.Intn(4)
		n := 1 + r.Intn(200)
		k := 1 + r.Intn(10)
		pts := randomPoints(r, n, d)
		tree := Build(pts)
		q := randomPoints(r, 1, d)[0]
		got, _ := tree.Nearest(q, k)
		want := BruteNearest(pts, q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			// Indices may differ under distance ties; distances must match.
			if math.Abs(got[i].Dist2-want[i].Dist2) > 1e-12 {
				t.Fatalf("trial %d rank %d: dist2 %v != %v", trial, i, got[i].Dist2, want[i].Dist2)
			}
		}
	}
}

func TestKDTreeSortedOutput(t *testing.T) {
	r := rng.New(2)
	pts := randomPoints(r, 500, 3)
	tree := Build(pts)
	q := geom.V(0.5, 0.5, 0.5)
	res, _ := tree.Nearest(q, 20)
	if !sort.SliceIsSorted(res, func(i, j int) bool { return res[i].Dist2 < res[j].Dist2 }) {
		t.Fatal("results not sorted by distance")
	}
}

func TestKDTreeKLargerThanN(t *testing.T) {
	r := rng.New(3)
	pts := randomPoints(r, 5, 2)
	tree := Build(pts)
	res, _ := tree.Nearest(geom.V(0, 0), 50)
	if len(res) != 5 {
		t.Fatalf("got %d results, want all 5", len(res))
	}
}

func TestKDTreeEmptyAndZeroK(t *testing.T) {
	tree := Build(nil)
	if res, _ := tree.Nearest(geom.V(0, 0), 3); res != nil {
		t.Fatal("empty tree should return nil")
	}
	tree = Build([]geom.Vec{geom.V(1, 1)})
	if res, _ := tree.Nearest(geom.V(0, 0), 0); res != nil {
		t.Fatal("k=0 should return nil")
	}
	if tree.Len() != 1 {
		t.Fatalf("Len = %d", tree.Len())
	}
}

func TestKDTreeExactPointFound(t *testing.T) {
	r := rng.New(4)
	pts := randomPoints(r, 100, 3)
	tree := Build(pts)
	for i, p := range pts {
		res, _ := tree.Nearest(p, 1)
		if len(res) != 1 || res[0].Dist2 > 1e-15 {
			t.Fatalf("query of existing point %d returned %v", i, res)
		}
	}
}

func TestNearestExcludingSelf(t *testing.T) {
	r := rng.New(5)
	pts := randomPoints(r, 50, 2)
	tree := Build(pts)
	for i, p := range pts {
		res, _ := tree.NearestExcluding(p, 3, func(j int) bool { return j == i })
		for _, rr := range res {
			if rr.Index == i {
				t.Fatalf("excluded index %d returned", i)
			}
		}
		want := BruteNearestExcluding(pts, p, 3, func(j int) bool { return j == i })
		if len(res) != len(want) {
			t.Fatalf("point %d: got %d, want %d", i, len(res), len(want))
		}
		for j := range res {
			if math.Abs(res[j].Dist2-want[j].Dist2) > 1e-12 {
				t.Fatalf("point %d rank %d: %v != %v", i, j, res[j].Dist2, want[j].Dist2)
			}
		}
	}
}

func TestKDTreePropertyAgainstBrute(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		pts := randomPoints(r, 1+r.Intn(100), 2)
		tree := Build(pts)
		q := geom.V(r.Float64(), r.Float64())
		got, _ := tree.Nearest(q, 5)
		want := BruteNearest(pts, q, 5)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Dist2-want[i].Dist2) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalCountPositive(t *testing.T) {
	r := rng.New(6)
	pts := randomPoints(r, 1000, 3)
	tree := Build(pts)
	_, evals := tree.Nearest(geom.V(0.5, 0.5, 0.5), 5)
	if evals <= 0 || evals > 1000 {
		t.Fatalf("evals = %d", evals)
	}
}

func TestBruteDeterministicTieBreak(t *testing.T) {
	pts := []geom.Vec{geom.V(1, 0), geom.V(-1, 0), geom.V(0, 1)}
	res := BruteNearest(pts, geom.V(0, 0), 2)
	if res[0].Index != 0 || res[1].Index != 1 {
		t.Fatalf("tie-break order = %v", res)
	}
}

func BenchmarkKDTreeBuild1000(b *testing.B) {
	r := rng.New(1)
	pts := randomPoints(r, 1000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}

func BenchmarkKDTreeQuery1000(b *testing.B) {
	r := rng.New(1)
	pts := randomPoints(r, 1000, 3)
	tree := Build(pts)
	q := geom.V(0.5, 0.5, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Nearest(q, 10)
	}
}
