package knn

import (
	"math"
	"testing"
	"testing/quick"

	"parmp/internal/geom"
	"parmp/internal/rng"
)

func TestRadiusMatchesBrute(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 40; trial++ {
		pts := randomPoints(r, 1+r.Intn(300), 3)
		tree := Build(pts)
		q := geom.V(r.Float64(), r.Float64(), r.Float64())
		radius := r.Float64() * 0.5
		got, _ := tree.Radius(q, radius)
		want := BruteRadius(pts, q, radius)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d hits vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Index != want[i].Index || math.Abs(got[i].Dist2-want[i].Dist2) > 1e-12 {
				t.Fatalf("trial %d rank %d: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestRadiusEdgeCases(t *testing.T) {
	tree := Build(nil)
	if out, _ := tree.Radius(geom.V(0, 0), 1); out != nil {
		t.Fatal("empty tree radius should be nil")
	}
	pts := []geom.Vec{geom.V(0, 0), geom.V(1, 0)}
	tree = Build(pts)
	if out, _ := tree.Radius(geom.V(0, 0), -1); out != nil {
		t.Fatal("negative radius should be nil")
	}
	out, _ := tree.Radius(geom.V(0, 0), 0)
	if len(out) != 1 || out[0].Index != 0 {
		t.Fatalf("zero radius should hit the exact point: %v", out)
	}
	out, _ = tree.Radius(geom.V(0.5, 0), 10)
	if len(out) != 2 {
		t.Fatalf("large radius should hit all: %v", out)
	}
}

func TestRadiusSortedAscending(t *testing.T) {
	r := rng.New(12)
	pts := randomPoints(r, 500, 2)
	tree := Build(pts)
	out, _ := tree.Radius(geom.V(0.5, 0.5), 0.4)
	for i := 1; i < len(out); i++ {
		if out[i].Dist2 < out[i-1].Dist2 {
			t.Fatal("radius results not sorted")
		}
	}
}

func TestRadiusProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		pts := randomPoints(r, 1+r.Intn(100), 2)
		tree := Build(pts)
		q := geom.V(r.Float64(), r.Float64())
		radius := r.Float64() * 0.7
		got, _ := tree.Radius(q, radius)
		// All hits within radius and every point within radius is a hit.
		hitSet := map[int]bool{}
		for _, h := range got {
			if h.Dist2 > radius*radius+1e-12 {
				return false
			}
			hitSet[h.Index] = true
		}
		for i, p := range pts {
			if q.Dist2(p) <= radius*radius && !hitSet[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
