package knn

import (
	"math"
	"testing"

	"parmp/internal/geom"
	"parmp/internal/rng"
)

func TestDynamicMatchesBruteUnderGrowth(t *testing.T) {
	r := rng.New(31)
	d := NewDynamic()
	var pts []geom.Vec
	for i := 0; i < 500; i++ {
		p := geom.V(r.Float64(), r.Float64(), r.Float64())
		idx := d.Add(p)
		if idx != i {
			t.Fatalf("Add returned %d, want %d", idx, i)
		}
		pts = append(pts, p)
		if i%37 != 0 {
			continue
		}
		q := geom.V(r.Float64(), r.Float64(), r.Float64())
		got, _ := d.Nearest(q, 5)
		want := BruteNearest(pts, q, 5)
		if len(got) != len(want) {
			t.Fatalf("step %d: %d hits vs %d", i, len(got), len(want))
		}
		for j := range got {
			if math.Abs(got[j].Dist2-want[j].Dist2) > 1e-12 {
				t.Fatalf("step %d rank %d: %v vs %v", i, j, got[j], want[j])
			}
		}
	}
	if d.Len() != 500 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDynamicEmptyAndZeroK(t *testing.T) {
	d := NewDynamic()
	if out, _ := d.Nearest(geom.V(0, 0), 3); out != nil {
		t.Fatal("empty index should return nil")
	}
	d.Add(geom.V(1, 1))
	if out, _ := d.Nearest(geom.V(0, 0), 0); out != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestDynamicRebuildBoundary(t *testing.T) {
	// Exactly the rebuild boundary: results stay correct across it.
	r := rng.New(32)
	d := NewDynamic()
	var pts []geom.Vec
	for i := 0; i < 100; i++ {
		p := geom.V(r.Float64(), r.Float64())
		d.Add(p)
		pts = append(pts, p)
	}
	q := geom.V(0.5, 0.5)
	got, _ := d.Nearest(q, 100)
	if len(got) != 100 {
		t.Fatalf("expected all 100 points, got %d", len(got))
	}
	want := BruteNearest(pts, q, 100)
	for i := range got {
		if math.Abs(got[i].Dist2-want[i].Dist2) > 1e-12 {
			t.Fatalf("rank %d mismatch", i)
		}
	}
}

func BenchmarkDynamicGrowAndQuery(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		d := NewDynamic()
		for j := 0; j < 500; j++ {
			d.Add(geom.V(r.Float64(), r.Float64(), r.Float64()))
			if j%10 == 0 {
				d.Nearest(geom.V(0.5, 0.5, 0.5), 1)
			}
		}
	}
}
