package repart

import (
	"math"
	"testing"
	"testing/quick"

	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/region"
	"parmp/internal/rng"
	"parmp/internal/work"
)

func grid4x4() *region.Graph {
	return region.MustUniformGrid(geom.Box2(0, 0, 1, 1), region.GridSpec{Cells: []int{4, 4}})
}

func TestGreedyLPTBalances(t *testing.T) {
	weights := []float64{10, 9, 8, 7, 1, 1, 1, 1}
	assign := GreedyLPT(weights, 2)
	load := make([]float64, 2)
	for i, a := range assign {
		load[a] += weights[i]
	}
	if math.Abs(load[0]-load[1]) > 1 {
		t.Fatalf("loads %v not balanced", load)
	}
}

func TestGreedyLPTAssignsAll(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(100)
		p := 1 + r.Intn(16)
		w := make([]float64, n)
		for i := range w {
			w[i] = r.Float64() * 10
		}
		assign := GreedyLPT(w, p)
		if len(assign) != n {
			return false
		}
		for _, a := range assign {
			if a < 0 || a >= p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyLPTOptimalityBound(t *testing.T) {
	// LPT guarantee: makespan <= (4/3 - 1/(3p)) * OPT, and OPT >= total/p.
	r := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		n := 20 + r.Intn(100)
		p := 2 + r.Intn(8)
		w := make([]float64, n)
		var total float64
		for i := range w {
			w[i] = r.Float64()*9 + 1
			total += w[i]
		}
		assign := GreedyLPT(w, p)
		load := make([]float64, p)
		var maxw float64
		for i, a := range assign {
			load[a] += w[i]
			if w[i] > maxw {
				maxw = w[i]
			}
		}
		var mk float64
		for _, l := range load {
			if l > mk {
				mk = l
			}
		}
		lower := math.Max(total/float64(p), maxw)
		if mk > lower*(4.0/3.0)+1e-9 {
			t.Fatalf("trial %d: LPT makespan %v exceeds 4/3 bound over %v", trial, mk, lower)
		}
	}
}

func TestGreedyLPTReducesCV(t *testing.T) {
	rg := grid4x4()
	// Imbalanced weights: first column heavy.
	w := make([]float64, 16)
	for i := range w {
		if i < 4 {
			w[i] = 10
		} else {
			w[i] = 1
		}
	}
	region.NaiveColumnPartition(rg, 4)
	naiveCV := CoefficientOfVariation(w, rg.Owner, 4)
	lptCV := CoefficientOfVariation(w, GreedyLPT(w, 4), 4)
	if lptCV >= naiveCV {
		t.Fatalf("LPT CV %v should beat naive %v", lptCV, naiveCV)
	}
}

func TestGreedySpatialBalancesAndKeepsLocality(t *testing.T) {
	rg := grid4x4()
	w := make([]float64, 16)
	for i := range w {
		w[i] = 1
	}
	assign := GreedySpatial(rg, w, 4, 0.05)
	load := make([]float64, 4)
	for _, a := range assign {
		if a < 0 || a >= 4 {
			t.Fatalf("bad assignment %d", a)
		}
		load[a]++
	}
	for p, l := range load {
		if l != 4 {
			t.Fatalf("proc %d load %v, want 4", p, l)
		}
	}
	// Spatial preference: edge cut should be below the worst case and at
	// least as good as random scattering (which averages ~18 of 24).
	copy(rg.Owner, assign)
	if cut := rg.EdgeCut(); cut > 16 {
		t.Fatalf("spatial edge cut = %d, too fragmented", cut)
	}
}

func TestGreedySpatialVsLPTEdgeCut(t *testing.T) {
	rg := region.MustUniformGrid(geom.Box2(0, 0, 1, 1), region.GridSpec{Cells: []int{8, 8}})
	r := rng.New(5)
	w := make([]float64, 64)
	for i := range w {
		w[i] = 1 + r.Float64()
	}
	lpt := GreedyLPT(w, 8)
	spatial := GreedySpatial(rg, w, 8, 0.1)
	copy(rg.Owner, lpt)
	lptCut := rg.EdgeCut()
	copy(rg.Owner, spatial)
	spatialCut := rg.EdgeCut()
	if spatialCut >= lptCut {
		t.Fatalf("spatial cut %d should beat LPT cut %d", spatialCut, lptCut)
	}
	// Both should still balance reasonably.
	lptCV := CoefficientOfVariation(w, lpt, 8)
	spatialCV := CoefficientOfVariation(w, spatial, 8)
	if spatialCV > lptCV+0.35 {
		t.Fatalf("spatial CV %v too far above LPT CV %v", spatialCV, lptCV)
	}
}

func TestMakePlanAndApply(t *testing.T) {
	rg := grid4x4()
	region.NaiveColumnPartition(rg, 4)
	w := make([]float64, 16)
	for i := range w {
		w[i] = float64(i)
	}
	assign := GreedyLPT(w, 4)
	pl := MakePlan(rg, assign)
	if len(pl.Moved) == 0 {
		t.Fatal("plan should move something")
	}
	// MakePlan must not mutate ownership.
	for i := 0; i < 16; i++ {
		if rg.Owner[i] != i*4/16 {
			t.Fatal("MakePlan mutated ownership")
		}
	}
	pl.Apply(rg)
	for i := range assign {
		if rg.Owner[i] != assign[i] {
			t.Fatal("Apply did not install assignment")
		}
	}
	if pl.EdgeCutBefore <= 0 || pl.EdgeCutAfter <= 0 {
		t.Fatalf("edge cuts not recorded: %+v", pl)
	}
}

func TestMigrationCost(t *testing.T) {
	rg := grid4x4()
	region.NaiveColumnPartition(rg, 2)
	assign := append([]int(nil), rg.Owner...)
	assign[0] = 1 // move one region
	pl := MakePlan(rg, assign)
	prof := work.MachineProfile{MigrateFixed: 10, MigratePerVertex: 2}
	payload := make([]int, 16)
	payload[0] = 5
	got := pl.MigrationCost(rg, prof, payload, 2)
	// One (src,dst) pair: batch fixed 10 + descriptor 1 + 2*5 payload.
	want := 10.0 + 1 + 2*5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MigrationCost = %v, want %v", got, want)
	}
	if got := pl.MigrationCost(rg, prof, nil, 2); got != 11 {
		t.Fatalf("nil payload should charge fixed+descriptor, got %v", got)
	}
	// Empty plan costs nothing.
	empty := MakePlan(rg, rg.Owner)
	if empty.MigrationCost(rg, prof, payload, 2) != 0 {
		t.Fatal("no-op plan should be free")
	}
}

func TestSampleCountWeights(t *testing.T) {
	w := SampleCountWeights([]int{3, 0, 7})
	if w[0] != 3 || w[1] != 0 || w[2] != 7 {
		t.Fatalf("weights = %v", w)
	}
}

func TestKRayWeightsFreeVsBlocked(t *testing.T) {
	e := env.MedCube()
	apex := geom.V(0.5, 0.5, 0.05) // below the central cube
	rg := region.RadialSubdivision(apex, region.RadialSpec{
		Regions: 16, K: 3, Radius: 0.9, Deterministic: true,
	}, rng.New(1))
	w := KRayWeights(e, rg, 32, 7)
	// Regions pointing up (into the obstacle) must score lower than
	// regions pointing down/outward.
	var up, down float64
	var nUp, nDown int
	for i := 0; i < rg.NumRegions(); i++ {
		ray := rg.Region(i).Ray
		if ray[1] > 0.5 { // Fibonacci sphere: y axis component
			up += w[i]
			nUp++
		} else if ray[1] < -0.5 {
			down += w[i]
			nDown++
		}
	}
	if nUp == 0 || nDown == 0 {
		t.Skip("direction buckets empty")
	}
	_ = up / float64(nUp)
	_ = down / float64(nDown)
	// All weights must be positive and bounded by the radius.
	for i, wi := range w {
		if wi <= 0 || wi > 0.9+1e-9 {
			t.Fatalf("weight %d = %v out of range", i, wi)
		}
	}
}

func TestKRayWeightsDeterministic(t *testing.T) {
	e := env.Mixed30()
	rg := region.RadialSubdivision(geom.V(0.5, 0.5, 0.5), region.RadialSpec{
		Regions: 8, K: 2, Radius: 0.5, Deterministic: true,
	}, rng.New(2))
	a := KRayWeights(e, rg, 16, 9)
	b := KRayWeights(e, rg, 16, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("KRayWeights not deterministic")
		}
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	// Perfect balance: CV = 0.
	if cv := CoefficientOfVariation([]float64{1, 1}, []int{0, 1}, 2); cv != 0 {
		t.Fatalf("balanced CV = %v", cv)
	}
	// All on one proc of two: loads (2, 0), mu=1, sigma=1 -> CV=1.
	if cv := CoefficientOfVariation([]float64{1, 1}, []int{0, 0}, 2); math.Abs(cv-1) > 1e-12 {
		t.Fatalf("concentrated CV = %v", cv)
	}
	// Zero weights: CV = 0 (no work, no imbalance).
	if cv := CoefficientOfVariation([]float64{0, 0}, []int{0, 1}, 2); cv != 0 {
		t.Fatalf("zero CV = %v", cv)
	}
}
