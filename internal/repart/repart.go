// Package repart implements bulk-synchronous repartitioning of the region
// graph (Section III-B of the paper): estimate a weight per region,
// compute a better region→processor assignment with a greedy global
// partitioner (the exact problem is NP-complete), and price the data
// migration the new assignment implies.
//
// Two weight estimators are provided, matching the paper:
//
//   - PRM: the number of roadmap samples inside the region — cheap and
//     highly correlated with node-connection work, which makes
//     repartitioning very effective for PRM;
//   - RRT: the k-random-rays free-space probe — shown by the paper (and
//     reproduced here) to be a *poor* estimator, which makes
//     repartitioning counter-productive for radial RRT.
package repart

import (
	"container/heap"
	"math"
	"sort"

	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/region"
	"parmp/internal/rng"
	"parmp/internal/work"
)

// procLoad is a heap entry for the LPT partitioner.
type procLoad struct {
	proc int
	load float64
}

type loadHeap []procLoad

func (h loadHeap) Len() int { return len(h) }
func (h loadHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].proc < h[j].proc
}
func (h loadHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *loadHeap) Push(x any)   { *h = append(*h, x.(procLoad)) }
func (h *loadHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// GreedyLPT computes a weight-balanced assignment of regions to p
// processors using longest-processing-time-first: regions sorted by
// descending weight, each placed on the least-loaded processor. Edge cuts
// are ignored (the paper's model-environment partitioner). It returns the
// assignment without applying it.
func GreedyLPT(weights []float64, p int) []int {
	n := len(weights)
	assign := make([]int, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if weights[order[a]] != weights[order[b]] {
			return weights[order[a]] > weights[order[b]]
		}
		return order[a] < order[b]
	})
	h := make(loadHeap, p)
	for i := 0; i < p; i++ {
		h[i] = procLoad{proc: i}
	}
	heap.Init(&h)
	for _, ri := range order {
		least := heap.Pop(&h).(procLoad)
		assign[ri] = least.proc
		least.load += weights[ri]
		heap.Push(&h, least)
	}
	return assign
}

// GreedySpatial computes a weight-balanced assignment that preserves
// spatial contiguity: regions are visited in a spatial sweep (ID order
// for grids, BFS for other region graphs) and assigned to processors in
// contiguous chunks sized by weight, so the edge cut stays near the
// naive partition's while loads approach the ideal. slack loosens the
// per-chunk fill threshold as a fraction of the ideal load (default 0.05
// when <= 0).
func GreedySpatial(rg *region.Graph, weights []float64, p int, slack float64) []int {
	n := len(weights)
	if slack <= 0 {
		slack = 0.05
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	load := make([]float64, p)

	// Order: grid regions are visited in ID order — row-major IDs are a
	// spatial sweep, so contiguous chunks are slabs and the edge cut
	// stays close to the naive column partition's. Region graphs without
	// grid structure (radial cones) use a BFS sweep instead, which keeps
	// consecutive placements adjacent on the sphere.
	var order []int
	if rg.NumRegions() > 0 && rg.Region(0).Kind == region.KindBox {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	} else {
		order = make([]int, 0, n)
		seen := make([]bool, n)
		for start := 0; start < n; start++ {
			if seen[start] {
				continue
			}
			queue := []int{start}
			seen[start] = true
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				order = append(order, cur)
				for _, nb := range rg.Adjacent(cur) {
					if !seen[nb] {
						seen[nb] = true
						queue = append(queue, nb)
					}
				}
			}
		}
	}

	// Region growing: fill processor 0 with a contiguous BFS chunk, then
	// processor 1, and so on. Contiguous chunks keep the edge cut low.
	// The fill threshold is recomputed from the weight still unassigned,
	// so early overshoot does not pile the remainder onto the last
	// processor.
	remaining := total
	cur := 0
	target := remaining / float64(p)
	for _, ri := range order {
		// Advance when adding this region would overshoot the chunk
		// target by more than half the region's weight — i.e. stop at
		// whichever boundary lands closer to the target. slack biases
		// the decision toward slightly fuller chunks.
		if cur < p-1 && load[cur]+weights[ri]/2 > target*(1+slack) {
			remaining -= load[cur]
			cur++
			target = remaining / float64(p-cur)
		}
		assign[ri] = cur
		load[cur] += weights[ri]
	}
	return assign
}

// Plan describes a migration from the current ownership to a new
// assignment.
type Plan struct {
	NewOwner []int
	// Moved lists region IDs whose owner changes.
	Moved []int
	// EdgeCutBefore/After count region-graph edges crossing processors.
	EdgeCutBefore, EdgeCutAfter int
}

// MakePlan diffs the region graph's current ownership against assign.
func MakePlan(rg *region.Graph, assign []int) Plan {
	pl := Plan{NewOwner: append([]int(nil), assign...)}
	pl.EdgeCutBefore = rg.EdgeCut()
	for i, o := range assign {
		if rg.Owner[i] != o {
			pl.Moved = append(pl.Moved, i)
		}
	}
	old := append([]int(nil), rg.Owner...)
	copy(rg.Owner, assign)
	pl.EdgeCutAfter = rg.EdgeCut()
	copy(rg.Owner, old)
	return pl
}

// Apply installs the plan's ownership into the region graph.
func (pl Plan) Apply(rg *region.Graph) {
	copy(rg.Owner, pl.NewOwner)
}

// MigrationCost prices the plan under a machine profile. Redistribution
// is bulk-synchronous, so moves between the same (source, destination)
// pair batch into one message: the fixed migration overhead is charged
// once per pair, plus a per-vertex charge for each moved region's payload
// (e.g. samples already generated in it). payload may be nil
// (descriptor-only migration; a small per-region descriptor charge
// remains). The result is the maximum cost over processors, since sends
// proceed in parallel.
func (pl Plan) MigrationCost(rg *region.Graph, profile work.MachineProfile, payload []int, procs int) float64 {
	perProc := make([]float64, procs)
	pairSeen := map[[2]int]bool{}
	// Per-region descriptor bytes are tiny relative to payload; charge a
	// fraction of the fixed cost for each.
	descriptor := profile.MigrateFixed / 10
	for _, ri := range pl.Moved {
		src, dst := rg.Owner[ri], pl.NewOwner[ri]
		cost := descriptor
		if payload != nil {
			cost += profile.MigratePerVertex * float64(payload[ri])
		}
		pair := [2]int{src, dst}
		if !pairSeen[pair] {
			pairSeen[pair] = true
			cost += profile.MigrateFixed
		}
		// Charge both ends of the transfer.
		perProc[src] += cost
		perProc[dst] += cost
	}
	var max float64
	for _, c := range perProc {
		if c > max {
			max = c
		}
	}
	return max
}

// SampleCountWeights returns the paper's PRM region weight: the number of
// roadmap samples that lie within each region ("a good metric for
// approximating the amount of work that a region will generate").
func SampleCountWeights(samplesPerRegion []int) []float64 {
	w := make([]float64, len(samplesPerRegion))
	for i, n := range samplesPerRegion {
		w[i] = float64(n)
	}
	return w
}

// KRayWeights estimates RRT region work with the paper's k-random-rays
// probe: cast k rays from the region apex within the cone and average the
// distance to the first obstacle. The paper shows — and this reproduction
// preserves — that the estimate correlates poorly with actual branch
// growth cost unless k is impractically large.
func KRayWeights(e *env.Environment, rg *region.Graph, k int, seed uint64) []float64 {
	w := make([]float64, rg.NumRegions())
	for i := 0; i < rg.NumRegions(); i++ {
		reg := rg.Region(i)
		if reg.Kind != region.KindCone {
			continue
		}
		r := rng.Derive(seed, uint64(i)+0x5151)
		var sum float64
		for j := 0; j < k; j++ {
			dir := sampleConeDir(reg, r)
			d := e.RayDistanceToObstacle(reg.Apex, dir)
			if d > reg.Radius {
				d = reg.Radius
			}
			sum += d
		}
		w[i] = sum / float64(k)
	}
	return w
}

// sampleConeDir draws a unit direction within the region's cone.
func sampleConeDir(reg *region.Region, r *rng.Stream) geom.Vec {
	p := region.SampleInCone(reg, r).Sub(reg.Apex)
	if p.Norm() < 1e-12 {
		return reg.Ray.Clone()
	}
	return p.Unit()
}

// CoefficientOfVariation returns sigma/mu of the per-processor loads
// implied by weights and assignment — the paper's imbalance measure.
func CoefficientOfVariation(weights []float64, assign []int, procs int) float64 {
	load := make([]float64, procs)
	for i, w := range weights {
		load[assign[i]] += w
	}
	return cvOf(load)
}

func cvOf(load []float64) float64 {
	n := float64(len(load))
	if n == 0 {
		return 0
	}
	var sum float64
	for _, l := range load {
		sum += l
	}
	mu := sum / n
	if mu == 0 {
		return 0
	}
	var ss float64
	for _, l := range load {
		d := l - mu
		ss += d * d
	}
	return math.Sqrt(ss/n) / mu
}
