// Package repairbench defines the repair-vs-rebuild benchmark schema
// (BENCH_repair.json) and its regression gate — the dynamic-worlds
// sibling of internal/balancebench's imbalance gate.
//
// The benchmark grows a PRM roadmap in a scripted dynamic scenario
// (internal/env.Scenarios: forklifts patrolling a warehouse, a door
// sliding over the narrow passage), then plays the scenario's mutation
// steps. Each step is costed twice on the virtual-time backend: the
// incremental repair (core.PRMEngine.ApplyDelta, the roadmap-reuse path)
// and a full from-scratch rebuild of an equal-effort roadmap in the
// mutated world. Both numbers are deterministic virtual makespans, so
// the repair speedup can be gated in CI against a checked-in baseline
// without machine noise.
package repairbench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"parmp/internal/core"
	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/work"
)

// Step is one scripted mutation step: the delta's repair bill next to
// the counterfactual rebuild bill.
type Step struct {
	Step int `json:"step"`
	// Repair work actually paid (conservative culling makes the rest free).
	CheckedNodes int `json:"checked_nodes"`
	CheckedEdges int `json:"checked_edges"`
	RemovedNodes int `json:"removed_nodes"`
	RemovedEdges int `json:"removed_edges"`
	// RepairMakespan is the virtual time of the repair phases;
	// RebuildMakespan is the virtual time of constructing an equal-effort
	// roadmap from scratch in the post-mutation world.
	RepairMakespan  float64 `json:"repair_makespan"`
	RebuildMakespan float64 `json:"rebuild_makespan"`
	// Speedup is RebuildMakespan / RepairMakespan.
	Speedup float64 `json:"speedup"`
}

// Result is one repair benchmark run: the BENCH_repair.json schema.
type Result struct {
	Source           string `json:"source"` // "mpbench"
	Scenario         string `json:"scenario"`
	Procs            int    `json:"procs"`
	Regions          int    `json:"regions"`
	Rounds           int    `json:"rounds"`
	SamplesPerRegion int    `json:"samples_per_region"`
	Seed             int64  `json:"seed"`

	// RepairTotal / RebuildTotal sum the per-step virtual makespans.
	RepairTotal  float64 `json:"repair_total"`
	RebuildTotal float64 `json:"rebuild_total"`
	// SpeedupMean / SpeedupMin aggregate the per-step speedups.
	SpeedupMean float64 `json:"speedup_mean"`
	SpeedupMin  float64 `json:"speedup_min"`

	Steps []Step `json:"steps"`
}

// Config parameterizes Run. The zero value is not runnable; use
// DefaultConfig for the CI shape.
type Config struct {
	Scenario string // dynamic scenario name (env.ScenarioByName)
	Procs    int
	Regions  int
	// Rounds is the initial roadmap's growth rounds — and the rebuild's,
	// so repair is compared against re-earning an equal-effort roadmap.
	Rounds           int
	Steps            int // scripted mutation steps to play
	SamplesPerRegion int
	Seed             int64
}

// DefaultConfig is the CI benchmark shape: a roadmap big enough that
// repair's locality matters, few enough steps to finish in well under a
// second.
func DefaultConfig() Config {
	return Config{
		Scenario:         "warehouse-forklift",
		Procs:            8,
		Regions:          64,
		Rounds:           3,
		Steps:            4,
		SamplesPerRegion: 5,
		Seed:             1,
	}
}

// Run grows the scenario's base roadmap, then plays cfg.Steps scripted
// mutation steps, costing each step's incremental repair against a full
// rebuild of the same growth effort in the mutated world. Deterministic:
// equal cfg always yields an identical Result.
func Run(cfg Config) (Result, error) {
	sc, ok := env.ScenarioByName(cfg.Scenario)
	if !ok {
		return Result{}, fmt.Errorf("unknown scenario %q (want one of %v)", cfg.Scenario, env.ScenarioNames())
	}
	world, mutate := sc.Build()
	opts := core.Options{
		Procs:            cfg.Procs,
		Regions:          cfg.Regions,
		SamplesPerRegion: cfg.SamplesPerRegion,
		ConnectK:         3,
		Seed:             uint64(cfg.Seed),
		Profile:          work.Hopper(),
		Strategy:         core.Repartition,
		CostModel:        core.CostObserved,
		Rebalance:        core.RebalanceDiffusive,
	}
	grow := func(e *env.Environment) (*core.PRMEngine, error) {
		eng, err := core.NewPRMEngine(cspace.NewPointSpace(e), opts)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cfg.Rounds; i++ {
			if err := eng.GrowRound(nil); err != nil {
				return nil, err
			}
		}
		return eng, nil
	}
	space := cspace.NewPointSpace(world)
	eng, err := core.NewPRMEngine(space, opts)
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < cfg.Rounds; i++ {
		if err := eng.GrowRound(nil); err != nil {
			return Result{}, err
		}
	}

	r := Result{
		Source:           "mpbench",
		Scenario:         cfg.Scenario,
		Procs:            cfg.Procs,
		Regions:          cfg.Regions,
		Rounds:           cfg.Rounds,
		SamplesPerRegion: cfg.SamplesPerRegion,
		Seed:             cfg.Seed,
	}
	for k := 0; k < cfg.Steps; k++ {
		// Scripted steps are relative to the poses the previous step left,
		// so each step mutates a clone of the current world.
		next := world.Clone()
		delta, err := mutate(next, k)
		if err != nil {
			return Result{}, fmt.Errorf("scenario %s step %d: %w", cfg.Scenario, k, err)
		}
		space = space.WithEnv(next)
		rep, err := eng.ApplyDelta(space, delta, nil, nil)
		if err != nil {
			return Result{}, fmt.Errorf("repair step %d: %w", k, err)
		}
		// Counterfactual: earn an equal-effort roadmap from scratch in the
		// mutated world.
		rebuilt, err := grow(next)
		if err != nil {
			return Result{}, fmt.Errorf("rebuild step %d: %w", k, err)
		}
		step := Step{
			Step:            k,
			CheckedNodes:    rep.Stats.CheckedNodes,
			CheckedEdges:    rep.Stats.CheckedEdges,
			RemovedNodes:    rep.Stats.RemovedNodes,
			RemovedEdges:    rep.Stats.RemovedEdges,
			RepairMakespan:  rep.Stats.Makespan,
			RebuildMakespan: rebuilt.Result().TotalTime,
		}
		if step.RepairMakespan > 0 {
			step.Speedup = step.RebuildMakespan / step.RepairMakespan
		}
		r.Steps = append(r.Steps, step)
		r.RepairTotal += step.RepairMakespan
		r.RebuildTotal += step.RebuildMakespan
		world = next
	}
	var speedupSum float64
	var speedupN int
	for _, st := range r.Steps {
		if st.Speedup <= 0 {
			continue // a free repair (nothing affected) has no meaningful ratio
		}
		speedupSum += st.Speedup
		speedupN++
		if r.SpeedupMin == 0 || st.Speedup < r.SpeedupMin {
			r.SpeedupMin = st.Speedup
		}
	}
	if speedupN > 0 {
		r.SpeedupMean = speedupSum / float64(speedupN)
	}
	return r, nil
}

// Write marshals r as indented JSON.
func Write(w io.Writer, r Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes r to path ("-" for stdout).
func WriteFile(path string, r Result) error {
	if path == "-" {
		return Write(os.Stdout, r)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a Result from path.
func Load(path string) (Result, error) {
	var r Result
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Gate bundles the repair regression thresholds. The benchmark is
// deterministic, so any drift is a real behavior change.
type Gate struct {
	// MinSpeedup fails the run when the mean repair speedup falls below
	// this absolute floor — the "repair must beat rebuild" contract.
	// Non-positive disables.
	MinSpeedup float64
	// MaxRepairRegress fails the run when the total repair makespan
	// exceeds the baseline's by more than this fraction. Negative
	// disables; nil baseline checks only MinSpeedup.
	MaxRepairRegress float64
}

// Check enforces g against r relative to baseline. It returns every
// violation, not just the first.
func (g Gate) Check(r Result, baseline *Result) error {
	var errs []error
	if g.MinSpeedup > 0 && r.SpeedupMean < g.MinSpeedup {
		errs = append(errs, fmt.Errorf("mean repair speedup %.2fx below floor %.2fx — repair no longer beats rebuild",
			r.SpeedupMean, g.MinSpeedup))
	}
	if baseline != nil && g.MaxRepairRegress >= 0 && baseline.RepairTotal > 0 {
		if limit := baseline.RepairTotal * (1 + g.MaxRepairRegress); r.RepairTotal > limit {
			errs = append(errs, fmt.Errorf("total repair makespan %.2f exceeds baseline %.2f by more than %.0f%% (limit %.2f)",
				r.RepairTotal, baseline.RepairTotal, 100*g.MaxRepairRegress, limit))
		}
	}
	if len(errs) == 0 {
		return nil
	}
	msg := "repair gate:"
	for _, e := range errs {
		msg += "\n  " + e.Error()
	}
	return fmt.Errorf("%s", msg)
}
