package repairbench

import (
	"bytes"
	"testing"
)

// The virtual-time benchmark is bit-stable: two runs of the same config
// serialize identically, so the CI gate never sees noise.
func TestRepairBenchDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Steps = 2 // keep the test cheap; determinism is step-count independent
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := Write(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := Write(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("two identical runs serialized differently")
	}
}

// Repair must beat rebuild on both scripted scenarios — the acceptance
// contract the CI gate enforces.
func TestRepairBeatsRebuild(t *testing.T) {
	for _, scenario := range []string{"warehouse-forklift", "door"} {
		cfg := DefaultConfig()
		cfg.Scenario = scenario
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", scenario, err)
		}
		if len(r.Steps) != cfg.Steps {
			t.Fatalf("%s: %d steps, want %d", scenario, len(r.Steps), cfg.Steps)
		}
		if r.RepairTotal >= r.RebuildTotal {
			t.Fatalf("%s: repair total %.2f not below rebuild total %.2f",
				scenario, r.RepairTotal, r.RebuildTotal)
		}
		if r.SpeedupMean < 1 {
			t.Fatalf("%s: mean speedup %.2fx below 1", scenario, r.SpeedupMean)
		}
		if err := (Gate{MinSpeedup: 1}).Check(r, nil); err != nil {
			t.Fatalf("%s: %v", scenario, err)
		}
	}
}

// The gate trips on a genuine regression and stays quiet otherwise.
func TestRepairGate(t *testing.T) {
	base := Result{RepairTotal: 100, SpeedupMean: 5}
	good := Result{RepairTotal: 105, SpeedupMean: 4}
	if err := (Gate{MinSpeedup: 1, MaxRepairRegress: 0.10}).Check(good, &base); err != nil {
		t.Fatalf("good run tripped the gate: %v", err)
	}
	slow := Result{RepairTotal: 150, SpeedupMean: 0.8}
	err := (Gate{MinSpeedup: 1, MaxRepairRegress: 0.10}).Check(slow, &base)
	if err == nil {
		t.Fatal("regressed run passed the gate")
	}
}
