package steal

import (
	"testing"
	"testing/quick"

	"parmp/internal/rng"
)

func TestRandKProperties(t *testing.T) {
	r := rng.New(1)
	p := RandK{K: 8}
	for trial := 0; trial < 100; trial++ {
		thief := trial % 16
		vs := p.Victims(thief, 16, 0, r)
		if len(vs) != 8 {
			t.Fatalf("got %d victims, want 8", len(vs))
		}
		seen := map[int]bool{}
		for _, v := range vs {
			if v == thief {
				t.Fatal("thief chose itself")
			}
			if v < 0 || v >= 16 {
				t.Fatalf("victim %d out of range", v)
			}
			if seen[v] {
				t.Fatal("duplicate victim")
			}
			seen[v] = true
		}
	}
}

func TestRandKSmallSystems(t *testing.T) {
	r := rng.New(2)
	p := RandK{K: 8}
	if vs := p.Victims(0, 1, 0, r); vs != nil {
		t.Fatal("single proc has no victims")
	}
	vs := p.Victims(0, 4, 0, r)
	if len(vs) != 3 {
		t.Fatalf("K capped: got %d, want 3", len(vs))
	}
}

func TestMeshDims(t *testing.T) {
	cases := []struct{ procs, rows, cols int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {12, 3, 4},
		{16, 4, 4}, {96, 9, 11}, {256, 16, 16},
	}
	for _, c := range cases {
		r, co := MeshDims(c.procs)
		if r != c.rows || co != c.cols {
			t.Errorf("MeshDims(%d) = (%d,%d), want (%d,%d)", c.procs, r, co, c.rows, c.cols)
		}
		if r*co < c.procs {
			t.Errorf("MeshDims(%d) too small", c.procs)
		}
	}
}

func TestMeshDimsCoverProperty(t *testing.T) {
	f := func(n uint16) bool {
		procs := int(n%5000) + 1
		r, c := MeshDims(procs)
		return r*c >= procs && r >= 1 && c >= r && (r-1)*c < procs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeshNeighborsSymmetric(t *testing.T) {
	for _, procs := range []int{4, 7, 16, 96} {
		for p := 0; p < procs; p++ {
			for _, q := range MeshNeighbors(p, procs) {
				found := false
				for _, back := range MeshNeighbors(q, procs) {
					if back == p {
						found = true
					}
				}
				if !found {
					t.Fatalf("procs=%d: neighbor relation not symmetric (%d->%d)", procs, p, q)
				}
			}
		}
	}
}

func TestMeshNeighborsCounts(t *testing.T) {
	// 4x4 mesh: corners have 2, edges 3, interior 4.
	if got := len(MeshNeighbors(0, 16)); got != 2 {
		t.Fatalf("corner neighbors = %d", got)
	}
	if got := len(MeshNeighbors(1, 16)); got != 3 {
		t.Fatalf("edge neighbors = %d", got)
	}
	if got := len(MeshNeighbors(5, 16)); got != 4 {
		t.Fatalf("interior neighbors = %d", got)
	}
}

func TestDiffusiveUsesNeighbors(t *testing.T) {
	r := rng.New(3)
	vs := Diffusive{}.Victims(5, 16, 0, r)
	want := map[int]bool{1: true, 4: true, 6: true, 9: true}
	if len(vs) != 4 {
		t.Fatalf("victims = %v", vs)
	}
	for _, v := range vs {
		if !want[v] {
			t.Fatalf("unexpected victim %d", v)
		}
	}
}

func TestDiffusiveRotation(t *testing.T) {
	r := rng.New(4)
	a := Diffusive{}.Victims(5, 16, 0, r)
	b := Diffusive{}.Victims(5, 16, 1, r)
	if a[0] == b[0] {
		t.Fatal("rotation should change first victim")
	}
}

func TestHybridEscalates(t *testing.T) {
	r := rng.New(5)
	p := Hybrid{K: 8}
	first := p.Victims(5, 64, 0, r)
	// Round 0 is diffusive: all victims are mesh neighbours.
	neigh := map[int]bool{}
	for _, n := range MeshNeighbors(5, 64) {
		neigh[n] = true
	}
	for _, v := range first {
		if !neigh[v] {
			t.Fatalf("round 0 victim %d is not a neighbour", v)
		}
	}
	// Round 1 is random: should produce K victims.
	second := p.Victims(5, 64, 1, r)
	if len(second) != 8 {
		t.Fatalf("fallback round gave %d victims", len(second))
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"diffusive", "hybrid", "rand-8"} {
		p, ok := ByName(name)
		if !ok || p == nil {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if p, _ := ByName("rand-8"); p.Name() != "rand-8" {
		t.Fatalf("Name = %q", p.Name())
	}
	if p, _ := ByName("hybrid"); p.Name() != "hybrid" {
		t.Fatalf("Name = %q", p.Name())
	}
	if _, ok := ByName("magic"); ok {
		t.Fatal("unknown policy should fail")
	}
}

func TestPolicyNeverReturnsThief(t *testing.T) {
	r := rng.New(6)
	pols := []Policy{RandK{K: 8}, Diffusive{}, Hybrid{K: 8}}
	for _, pol := range pols {
		for procs := 2; procs <= 40; procs += 7 {
			for thief := 0; thief < procs; thief++ {
				for attempt := 0; attempt < 3; attempt++ {
					for _, v := range pol.Victims(thief, procs, attempt, r) {
						if v == thief {
							t.Fatalf("%s returned the thief", pol.Name())
						}
						if v < 0 || v >= procs {
							t.Fatalf("%s victim out of range", pol.Name())
						}
					}
				}
			}
		}
	}
}
