// Package steal implements the victim-selection policies for work
// stealing in parallel sampling-based motion planning (Section III-A of
// the paper):
//
//   - RAND-K: request work from k random processors (k=8 in the paper's
//     evaluation), re-randomized on every attempt;
//   - DIFFUSIVE: processors are arranged in a 2D mesh and underloaded
//     processors ask their mesh neighbours;
//   - HYBRID: diffusive first; if no neighbour can serve the request,
//     fall back to random victims.
//
// Policies are pure: they produce candidate victim lists, and the
// distributed machine (simulated or real) performs the requests.
package steal

import (
	"fmt"

	"parmp/internal/rng"
)

// Policy produces candidate victims for a thief's steal round.
type Policy interface {
	// Victims returns the processors to ask, in order, for the given
	// round. attempt counts completed unsuccessful rounds, letting hybrid
	// policies escalate. The thief itself must never appear.
	Victims(thief, procs, attempt int, r *rng.Stream) []int
	// Name identifies the policy in reports.
	Name() string
}

// RandK asks K distinct random victims per round ("not necessarily the
// same k processors for each request").
type RandK struct {
	K int
}

// Name implements Policy.
func (p RandK) Name() string { return fmt.Sprintf("rand-%d", p.K) }

// Victims implements Policy.
func (p RandK) Victims(thief, procs, attempt int, r *rng.Stream) []int {
	if procs <= 1 {
		return nil
	}
	k := p.K
	if k > procs-1 {
		k = procs - 1
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := r.Intn(procs)
		if v == thief || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// MeshDims returns near-square 2D mesh dimensions (rows, cols) with
// rows*cols >= procs and cols >= rows, matching the paper's assumption
// that "processors are assumed to be arranged in a 2D mesh".
func MeshDims(procs int) (rows, cols int) {
	if procs <= 0 {
		return 0, 0
	}
	rows = 1
	for rows*rows <= procs {
		rows++
	}
	rows--
	cols = (procs + rows - 1) / rows
	return rows, cols
}

// Diffusive asks the thief's 2D-mesh neighbours (up, down, left, right),
// in a rotation that varies by attempt so no neighbour is systematically
// preferred.
type Diffusive struct{}

// Name implements Policy.
func (Diffusive) Name() string { return "diffusive" }

// Victims implements Policy.
func (Diffusive) Victims(thief, procs, attempt int, r *rng.Stream) []int {
	neigh := MeshNeighbors(thief, procs)
	if len(neigh) == 0 {
		return nil
	}
	rot := attempt % len(neigh)
	out := make([]int, 0, len(neigh))
	for i := range neigh {
		out = append(out, neigh[(i+rot)%len(neigh)])
	}
	return out
}

// MeshNeighbors returns the mesh neighbours of proc in a MeshDims(procs)
// arrangement, skipping coordinates that fall outside the (possibly
// ragged) last row.
func MeshNeighbors(proc, procs int) []int {
	rows, cols := MeshDims(procs)
	if rows == 0 {
		return nil
	}
	r0, c0 := proc/cols, proc%cols
	var out []int
	for _, d := range [][2]int{{0, 1}, {1, 0}, {0, -1}, {-1, 0}} {
		rr, cc := r0+d[0], c0+d[1]
		if rr < 0 || cc < 0 || rr >= rows || cc >= cols {
			continue
		}
		v := rr*cols + cc
		if v >= procs || v == proc {
			continue
		}
		out = append(out, v)
	}
	return out
}

// Hybrid runs Diffusive rounds first and escalates to RandK after
// FallbackAfter unsuccessful rounds ("in the event that no request could
// be serviced, requests are sent to random processors").
type Hybrid struct {
	K int
	// FallbackAfter is the number of failed diffusive rounds before
	// random stealing kicks in (default 1).
	FallbackAfter int
}

// Name implements Policy.
func (p Hybrid) Name() string { return "hybrid" }

func (p Hybrid) fallbackAfter() int {
	if p.FallbackAfter <= 0 {
		return 1
	}
	return p.FallbackAfter
}

// Victims implements Policy.
func (p Hybrid) Victims(thief, procs, attempt int, r *rng.Stream) []int {
	if attempt < p.fallbackAfter() {
		return Diffusive{}.Victims(thief, procs, attempt, r)
	}
	return RandK{K: p.K}.Victims(thief, procs, attempt, r)
}

// ByName constructs a policy from its report name: "rand-8", "diffusive",
// "hybrid". ok is false for unknown names.
func ByName(name string) (Policy, bool) {
	switch name {
	case "diffusive", "diff":
		return Diffusive{}, true
	case "hybrid":
		return Hybrid{K: 8}, true
	case "rand-8", "rand8", "rand":
		return RandK{K: 8}, true
	}
	return nil, false
}
