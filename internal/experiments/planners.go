package experiments

import (
	"fmt"
	"math"
	"time"

	"parmp/internal/core"
	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/metrics"
	"parmp/internal/rng"
	"parmp/internal/work"
)

// plannerRaceShortcut is the fixed smoothing budget applied to every
// extracted path so the quality comparison is planner-agnostic (raw
// RRT-Connect paths detour through the greedy connect segment).
const plannerRaceShortcut = 1000

// raceOutcome is one planner's result on one seed.
type raceOutcome struct {
	ms     float64 // wall-clock milliseconds to first solution
	length float64 // smoothed path length (0 when unsolved)
	rounds int
	solved bool
}

// racePlanner grows one engine round by round until a committed snapshot
// answers the root→goal query, and reports host wall-clock time to that
// first solution. Both planners pay the identical per-round index build
// and path extraction, so the comparison isolates planner growth.
func racePlanner(planner string, s *cspace.Space, root, goal cspace.Config, opts core.Options, maxRounds int) raceOutcome {
	start := time.Now()
	var grow func() (*core.RRTResult, error)
	switch planner {
	case "rrt":
		eng, err := core.NewRRTEngine(s, root, opts)
		if err != nil {
			panic(err)
		}
		grow = func() (*core.RRTResult, error) {
			if err := eng.GrowRound(nil); err != nil {
				return nil, err
			}
			return eng.Result(), nil
		}
	case "rrtconnect":
		eng, err := core.NewRRTConnectEngine(s, root, goal, opts)
		if err != nil {
			panic(err)
		}
		grow = func() (*core.RRTResult, error) {
			if err := eng.GrowRound(nil); err != nil {
				return nil, err
			}
			return eng.Result(), nil
		}
	default:
		panic(fmt.Sprintf("experiments: unknown planner %q", planner))
	}
	for round := 1; round <= maxRounds; round++ {
		res, err := grow()
		if err != nil {
			panic(err)
		}
		ix := core.BuildTreeIndex(res)
		path, ok := ix.ExtractPath(s, goal, nil)
		if !ok {
			continue
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		// Densify before each shortcut pass so cuts can land mid-segment
		// (vertex-pair shortcutting alone gets stuck on taut polylines);
		// every pass is monotone non-increasing in length.
		for pass := uint64(0); pass < 3; pass++ {
			path = cspace.Densify(s, path, 4*opts.Step)
			path = cspace.Shortcut(s, path, plannerRaceShortcut, rng.Derive(opts.Seed, 0x5407+pass), nil)
		}
		return raceOutcome{ms: ms, length: cspace.PathLength(s, path), rounds: round, solved: true}
	}
	return raceOutcome{ms: float64(time.Since(start).Microseconds()) / 1000, rounds: maxRounds}
}

// raceOpts sizes a planner race on e: radial reach is the environment
// diagonal so the corner-to-corner benchmark query is inside every cone.
func raceOpts(sc Scale, e *env.Environment, seed uint64) core.Options {
	var d2 float64
	for d := 0; d < e.Dim(); d++ {
		span := e.Bounds.Hi[d] - e.Bounds.Lo[d]
		d2 += span * span
	}
	// A fine step keeps the open-space race growth-dominated: covering
	// the corner-to-corner distance takes many extension steps, which is
	// the work the bidirectional search halves. The narrow-passage walls
	// env is feasibility-dominated instead, so it races at the default
	// coarser step (both planners always share the same options).
	step := 0.025
	if e.Name == "walls" {
		step = 0.05
	}
	return core.Options{
		Procs:   8,
		Regions: 32,
		// Doubled node budget per round: a denser round-1 tree gives the
		// smoother corridor the path-cost comparison needs.
		NodesPerRegion: 2 * sc.NodesPerRegion,
		Step:           step,
		GoalBias:       0.1,
		Radius:         math.Sqrt(d2),
		RegionK:        4,
		Profile:        work.OpteronCluster(),
		Seed:           seed,
	}
}

// PlannerCompare races the radial tree planners to the first solution of
// e's corner-to-corner benchmark query and tabulates wall-clock
// milliseconds and smoothed path length per seed (the EXPERIMENTS.md
// "RRT vs RRT-Connect" table). Unsolved seeds report length 0 and the
// time of the full round budget. Summary notes give each planner's mean
// time, mean path length and solve rate, plus the pairwise speedup when
// both rrt and rrtconnect raced.
func PlannerCompare(sc Scale, e *env.Environment, planners []string) *metrics.Table {
	seeds, maxRounds := sc.RaceSeeds, sc.RaceRounds
	if seeds <= 0 {
		seeds = 5
	}
	if maxRounds <= 0 {
		maxRounds = 64
	}
	cols := make([]string, 0, 2*len(planners))
	for _, p := range planners {
		cols = append(cols, p+"-ms", p+"-pathlen")
	}
	t := &metrics.Table{
		Title:   fmt.Sprintf("RRT vs RRT-Connect to First Solution, %s (wall clock)", e.Name),
		XLabel:  "seed#",
		Columns: cols,
	}
	s := cspace.NewPointSpace(e)
	root := make(cspace.Config, e.Dim())
	goal := make(cspace.Config, e.Dim())
	for d := range root {
		root[d] = e.Bounds.Lo[d] + 0.05*(e.Bounds.Hi[d]-e.Bounds.Lo[d])
		goal[d] = e.Bounds.Lo[d] + 0.95*(e.Bounds.Hi[d]-e.Bounds.Lo[d])
	}
	if !s.Valid(root, nil) || !s.Valid(goal, nil) {
		panic(fmt.Sprintf("experiments: %s benchmark corners are not free", e.Name))
	}
	sums := make(map[string]*struct {
		ms, length float64
		solved     int
	}, len(planners))
	for _, p := range planners {
		sums[p] = &struct {
			ms, length float64
			solved     int
		}{}
	}
	for i := 0; i < seeds; i++ {
		row := make([]float64, 0, len(cols))
		for _, p := range planners {
			out := racePlanner(p, s, root, goal, raceOpts(sc, e, sc.Seed+uint64(i)), maxRounds)
			row = append(row, out.ms, out.length)
			sum := sums[p]
			sum.ms += out.ms
			if out.solved {
				sum.length += out.length
				sum.solved++
			}
		}
		t.AddRow(float64(i), row...)
	}
	for _, p := range planners {
		sum := sums[p]
		meanLen := 0.0
		if sum.solved > 0 {
			meanLen = sum.length / float64(sum.solved)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: mean %.1f ms, mean path length %.3f, solved %d/%d",
			p, sum.ms/float64(seeds), meanLen, sum.solved, seeds))
	}
	if rrt, ok := sums["rrt"]; ok {
		if rc, ok := sums["rrtconnect"]; ok && rc.ms > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("rrtconnect speedup over rrt: %.2fx", rrt.ms/rc.ms))
		}
	}
	return t
}

// Planners runs the RRT vs RRT-Connect race on med-cube and the
// narrow-passage walls environment (the two EXPERIMENTS.md table
// workloads). planners selects the contestants; nil races both.
func Planners(sc Scale, planners []string) []*metrics.Table {
	if len(planners) == 0 {
		planners = []string{"rrt", "rrtconnect"}
	}
	return []*metrics.Table{
		PlannerCompare(sc, env.MedCube(), planners),
		PlannerCompare(sc, env.ByName("walls"), planners),
	}
}
