// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV). Each Fig* function runs the corresponding
// workload sweep and returns a metrics.Table whose rows/series mirror the
// paper's plot. EXPERIMENTS.md records paper-vs-measured shapes.
//
// Two scales are provided: Quick (seconds; used by `go test -bench` and
// CI) and Full (minutes; used by cmd/mpbench for paper-scale processor
// counts up to 3072).
package experiments

import (
	"fmt"

	"parmp/internal/core"
	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/metrics"
	"parmp/internal/model"
	"parmp/internal/prm"
	"parmp/internal/region"
	"parmp/internal/repart"
	"parmp/internal/rng"
	"parmp/internal/steal"
	"parmp/internal/work"
)

// Scale sizes an experiment sweep.
type Scale struct {
	Name string
	// ModelProcs sweeps Fig 4(a); ModelImpProcs Fig 4(b).
	ModelProcs    []int
	ModelImpProcs []int
	ModelGrid     int
	// PRMProcs sweeps Figs 5(a,b); PRMHighProcs Fig 6.
	PRMProcs     []int
	PRMHighProcs []int
	// ProfileProcs fixes the processor count for Fig 5(c) and 7(a);
	// RemoteProcs for Fig 7(b); Fig9Procs the two Fig 9 panels.
	ProfileProcs int
	RemoteProcs  int
	Fig9Procs    [2]int
	// OpteronProcs sweeps Fig 8; RRTProcs Fig 10.
	OpteronProcs []int
	RRTProcs     []int
	// Workload knobs.
	PRMRegions       int
	PRMHighRegions   int
	SamplesPerRegion int
	RRTRegions       int
	NodesPerRegion   int
	Seed             uint64
	// RaceSeeds/RaceRounds size the RRT vs RRT-Connect planner race
	// (seeds per planner, growth-round budget per seed). Zero values
	// fall back to the quick defaults.
	RaceSeeds  int
	RaceRounds int
	// PortfolioTrials sizes the portfolio tail-latency experiment (base
	// seeds per configuration). Zero falls back to the quick default.
	PortfolioTrials int
	// RepartRounds is the growth-round budget of the closed-loop
	// repartitioning experiment. Zero falls back to 4.
	RepartRounds int
}

// Quick returns the fast scale used in tests and benchmarks.
func Quick() Scale {
	return Scale{
		Name:             "quick",
		ModelProcs:       []int{2, 4, 8, 16, 32, 64},
		ModelImpProcs:    []int{4, 8, 16, 32},
		ModelGrid:        16,
		PRMProcs:         []int{8, 16, 32, 64},
		PRMHighProcs:     []int{32, 64, 128, 256},
		ProfileProcs:     16,
		RemoteProcs:      32,
		Fig9Procs:        [2]int{8, 64},
		OpteronProcs:     []int{8, 16, 32, 64},
		RRTProcs:         []int{4, 8, 16, 32},
		PRMRegions:       512,
		PRMHighRegions:   2048,
		SamplesPerRegion: 16,
		RRTRegions:       256,
		NodesPerRegion:   10,
		Seed:             42,
		RaceSeeds:        5,
		RaceRounds:       64,
		PortfolioTrials:  12,
		RepartRounds:     4,
	}
}

// Full returns the paper-scale sweep (Hopper processor counts up to
// 3072). It takes minutes rather than seconds.
func Full() Scale {
	return Scale{
		Name:             "full",
		ModelProcs:       []int{2, 4, 8, 16, 32, 64, 128, 256},
		ModelImpProcs:    []int{16, 32, 64, 128},
		ModelGrid:        32,
		PRMProcs:         []int{96, 192, 384, 768},
		PRMHighProcs:     []int{384, 768, 1536, 3072},
		ProfileProcs:     192,
		RemoteProcs:      768,
		Fig9Procs:        [2]int{96, 768},
		OpteronProcs:     []int{32, 64, 128, 256},
		RRTProcs:         []int{8, 32, 64, 128, 256},
		PRMRegions:       24576,
		PRMHighRegions:   98304,
		SamplesPerRegion: 32,
		RRTRegions:       2048,
		NodesPerRegion:   16,
		Seed:             42,
		RaceSeeds:        5,
		RaceRounds:       128,
		PortfolioTrials:  40,
		RepartRounds:     6,
	}
}

// ScaleByName returns Quick or Full. ok is false for unknown names.
func ScaleByName(name string) (Scale, bool) {
	switch name {
	case "quick":
		return Quick(), true
	case "full":
		return Full(), true
	}
	return Scale{}, false
}

// prmStrategies is the standard four-way comparison of the PRM figures.
func prmStrategies() []struct {
	label    string
	strategy core.Strategy
	policy   steal.Policy
} {
	return []struct {
		label    string
		strategy core.Strategy
		policy   steal.Policy
	}{
		{"without-lb", core.NoLB, nil},
		{"repartitioning", core.Repartition, nil},
		{"hybrid-ws", core.WorkStealing, steal.Hybrid{K: 8}},
		{"rand-8-ws", core.WorkStealing, steal.RandK{K: 8}},
	}
}

func prmOpts(sc Scale, procs int, profile work.MachineProfile) core.Options {
	return core.Options{
		Procs:            procs,
		Regions:          sc.PRMRegions,
		SamplesPerRegion: sc.SamplesPerRegion,
		ConnectK:         6,
		BoundaryK:        1,
		BoundaryFrontier: 1,
		Profile:          profile,
		Seed:             sc.Seed,
		// Half uniform, half obstacle-based (Gaussian) sampling — the
		// Parasol planners the paper builds on are obstacle-based
		// (OBPRM), which concentrates roadmap nodes near obstacle
		// surfaces. That concentration is what makes the paper's naive
		// mapping so imbalanced (Fig 3(b): most nodes on two
		// processors).
		Sampler: cspace.MixedSampler{
			Primary:   cspace.UniformSampler{},
			Secondary: cspace.GaussianSampler{},
			Fraction:  0.5,
		},
	}
}

func rrtOpts(sc Scale, procs int, profile work.MachineProfile) core.Options {
	return core.Options{
		Procs:          procs,
		Regions:        sc.RRTRegions,
		NodesPerRegion: sc.NodesPerRegion,
		Step:           0.05,
		GoalBias:       0.1,
		Radius:         0.6,
		RegionK:        4,
		Profile:        profile,
		Seed:           sc.Seed,
	}
}

// Fig4a reproduces Figure 4(a): coefficient of variation of the model
// environment — model-predicted imbalance (V_free, naive partition),
// model-predicted best balance, experimentally measured imbalance
// (sample counts, naive) and after repartitioning.
func Fig4a(sc Scale) *metrics.Table {
	m := model.Model{Blocked: 0.24, Grid: sc.ModelGrid}
	t := &metrics.Table{
		Title:  "Fig 4(a): Coefficient of Variation of Model Environment",
		XLabel: "procs",
		Columns: []string{
			"model-imbalance", "model-improvement",
			"experimental-imbalance", "repartitioning-improvement",
		},
	}
	e := m.Env()
	s := cspace.NewPointSpace(e)
	rg := m.Regions()
	n := rg.NumRegions()
	// Experimental sample counts per region (independent of P).
	counts := make([]int, n)
	params := prm.Params{SamplesPerRegion: sc.SamplesPerRegion, K: 4}
	for i := 0; i < n; i++ {
		nodes, _ := prm.SampleRegion(s, rg.Region(i).Box, i, params, rng.Derive(sc.Seed, uint64(i)))
		counts[i] = len(nodes)
	}
	weights := repart.SampleCountWeights(counts)
	for _, p := range sc.ModelProcs {
		region.NaiveColumnPartition(rg, p)
		expNaive := repart.CoefficientOfVariation(weights, rg.Owner, p)
		expBest := repart.CoefficientOfVariation(weights, repart.GreedyLPT(weights, p), p)
		t.AddRow(float64(p), m.NaiveCV(p), m.BestCV(p), expNaive, expBest)
	}
	return t
}

// Fig4b reproduces Figure 4(b): percentage improvement on the model
// environment — theoretical (unit free area), experimental (number of
// samples on the most-loaded processor) and runtime (load-balanced phase
// execution time).
func Fig4b(sc Scale) *metrics.Table {
	m := model.Model{Blocked: 0.24, Grid: sc.ModelGrid}
	t := &metrics.Table{
		Title:   "Fig 4(b): Theoretical Improvement and Experimental Speedup (Model Env)",
		XLabel:  "procs",
		Columns: []string{"theoretical-pct", "experimental-pct", "runtime-pct"},
	}
	e := m.Env()
	s := cspace.NewPointSpace(e)
	for _, p := range sc.ModelImpProcs {
		theo := m.TheoreticalImprovement(p)

		// Experimental: reduction in max per-proc sample count.
		rg := m.Regions()
		n := rg.NumRegions()
		counts := make([]int, n)
		params := prm.Params{SamplesPerRegion: sc.SamplesPerRegion, K: 4}
		for i := 0; i < n; i++ {
			nodes, _ := prm.SampleRegion(s, rg.Region(i).Box, i, params, rng.Derive(sc.Seed, uint64(i)))
			counts[i] = len(nodes)
		}
		weights := repart.SampleCountWeights(counts)
		region.NaiveColumnPartition(rg, p)
		maxNaive := maxLoad(weights, rg.Owner, p)
		maxBest := maxLoad(weights, repart.GreedyLPT(weights, p), p)
		expPct := 0.0
		if maxNaive > 0 && maxBest < maxNaive {
			expPct = 100 * (maxNaive - maxBest) / maxNaive
		}

		// Runtime: improvement of the node-connection phase.
		opts := core.Options{
			Procs: p, Regions: sc.ModelGrid * sc.ModelGrid,
			SamplesPerRegion: sc.SamplesPerRegion, ConnectK: 4, BoundaryK: 1,
			Profile: work.OpteronCluster(), Seed: sc.Seed,
		}
		noLB, err := core.ParallelPRM(s, opts)
		if err != nil {
			panic(err)
		}
		opts.Strategy = core.Repartition
		opts.Partitioner = core.PartitionLPT
		rp, err := core.ParallelPRM(s, opts)
		if err != nil {
			panic(err)
		}
		runPct := 0.0
		if noLB.Phases.NodeConnection > 0 && rp.Phases.NodeConnection < noLB.Phases.NodeConnection {
			runPct = 100 * (noLB.Phases.NodeConnection - rp.Phases.NodeConnection) / noLB.Phases.NodeConnection
		}
		t.AddRow(float64(p), theo, expPct, runPct)
	}
	return t
}

func maxLoad(weights []float64, assign []int, p int) float64 {
	load := make([]float64, p)
	for i, w := range weights {
		load[assign[i]] += w
	}
	return metrics.Max(load)
}

// Fig5a reproduces Figure 5(a): PRM execution time with all load
// balancing techniques in the med-cube environment on Hopper (strong
// scaling).
func Fig5a(sc Scale) *metrics.Table {
	return prmTimeSweep(sc, "Fig 5(a): PRM Execution Time, med-cube, Hopper",
		env.MedCube(), sc.PRMProcs, work.Hopper())
}

// prmTimeSweep runs the standard 4-strategy execution-time sweep.
func prmTimeSweep(sc Scale, title string, e *env.Environment, procs []int, profile work.MachineProfile) *metrics.Table {
	strategies := prmStrategies()
	cols := make([]string, len(strategies))
	for i, s := range strategies {
		cols[i] = s.label
	}
	t := &metrics.Table{Title: title, XLabel: "procs", Columns: cols}
	s := cspace.NewPointSpace(e)
	for _, p := range procs {
		row := make([]float64, len(strategies))
		for i, st := range strategies {
			opts := prmOpts(sc, p, profile)
			opts.Strategy = st.strategy
			opts.Policy = st.policy
			res, err := core.ParallelPRM(s, opts)
			if err != nil {
				panic(err)
			}
			row[i] = res.TotalTime
		}
		t.AddRow(float64(p), row...)
	}
	return t
}

// Fig5b reproduces Figure 5(b): coefficient of variation of PRM roadmap
// node loads before and after repartitioning, med-cube on Hopper.
func Fig5b(sc Scale) *metrics.Table {
	t := &metrics.Table{
		Title:   "Fig 5(b): CV of PRM Load Before/After Repartitioning, med-cube, Hopper",
		XLabel:  "procs",
		Columns: []string{"before-repartitioning", "after-repartitioning"},
	}
	s := cspace.NewPointSpace(env.MedCube())
	for _, p := range sc.PRMProcs {
		opts := prmOpts(sc, p, work.Hopper())
		opts.Strategy = core.Repartition
		res, err := core.ParallelPRM(s, opts)
		if err != nil {
			panic(err)
		}
		t.AddRow(float64(p), res.CVBefore, res.CVAfter)
	}
	return t
}

// Fig5c reproduces Figure 5(c): the per-processor roadmap-node load
// profile at a fixed processor count, med-cube on Hopper: without load
// balancing, with repartitioning, and the ideal (uniform) distribution.
func Fig5c(sc Scale) *metrics.Table {
	p := sc.ProfileProcs
	t := &metrics.Table{
		Title:   fmt.Sprintf("Fig 5(c): PRM Load Profile at %d procs, med-cube, Hopper", p),
		XLabel:  "proc",
		Columns: []string{"without-lb", "repartitioning", "ideal"},
	}
	s := cspace.NewPointSpace(env.MedCube())
	opts := prmOpts(sc, p, work.Hopper())
	noLB, err := core.ParallelPRM(s, opts)
	if err != nil {
		panic(err)
	}
	opts.Strategy = core.Repartition
	rp, err := core.ParallelPRM(s, opts)
	if err != nil {
		panic(err)
	}
	ideal := metrics.Sum(noLB.NodeLoads) / float64(p)
	// Sort descending so the profile shape (spread vs flat) is evident,
	// as in the paper's plot.
	noLBLoads := sortedDesc(noLB.NodeLoads)
	rpLoads := sortedDesc(rp.NodeLoads)
	for i := 0; i < p; i++ {
		t.AddRow(float64(i), noLBLoads[i], rpLoads[i], ideal)
	}
	return t
}

func sortedDesc(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] > out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Fig6 reproduces Figure 6: PRM execution time at high processor counts
// (up to 3072 in the full scale), med-cube on Hopper, NoLB vs
// repartitioning.
func Fig6(sc Scale) *metrics.Table {
	t := &metrics.Table{
		Title:   "Fig 6: PRM Execution Time at High Scale, med-cube, Hopper",
		XLabel:  "procs",
		Columns: []string{"without-lb", "repartitioning"},
	}
	s := cspace.NewPointSpace(env.MedCube())
	for _, p := range sc.PRMHighProcs {
		opts := prmOpts(sc, p, work.Hopper())
		opts.Regions = sc.PRMHighRegions
		noLB, err := core.ParallelPRM(s, opts)
		if err != nil {
			panic(err)
		}
		opts.Strategy = core.Repartition
		rp, err := core.ParallelPRM(s, opts)
		if err != nil {
			panic(err)
		}
		t.AddRow(float64(p), noLB.TotalTime, rp.TotalTime)
	}
	return t
}

// Fig7a reproduces Figure 7(a): the phase breakdown (region connection,
// node connection, other) for each load balancing policy at a fixed
// processor count, med-cube on Hopper. Rows are strategies in
// prmStrategies() order.
func Fig7a(sc Scale) *metrics.Table {
	p := sc.ProfileProcs
	t := &metrics.Table{
		Title:   fmt.Sprintf("Fig 7(a): PRM Phase Breakdown at %d procs, med-cube, Hopper", p),
		XLabel:  "strategy#",
		Columns: []string{"region-connection", "node-connection", "other"},
	}
	s := cspace.NewPointSpace(env.MedCube())
	for i, st := range prmStrategies() {
		opts := prmOpts(sc, p, work.Hopper())
		opts.Strategy = st.strategy
		opts.Policy = st.policy
		res, err := core.ParallelPRM(s, opts)
		if err != nil {
			panic(err)
		}
		other := res.Phases.Setup + res.Phases.Sampling + res.Phases.Redistribution + res.Phases.Other
		t.AddRow(float64(i), res.Phases.RegionConnection, res.Phases.NodeConnection, other)
		t.Notes = append(t.Notes, fmt.Sprintf("strategy %d = %s", i, st.label))
	}
	return t
}

// Fig7b reproduces Figure 7(b): remote accesses during the region
// connection phase at a fixed processor count — region-graph and
// roadmap-graph accesses, NoLB vs repartitioning.
func Fig7b(sc Scale) *metrics.Table {
	p := sc.RemoteProcs
	t := &metrics.Table{
		Title:   fmt.Sprintf("Fig 7(b): Remote Accesses in Region Connection at %d procs, med-cube, Hopper", p),
		XLabel:  "strategy#",
		Columns: []string{"region-graph", "roadmap-graph"},
	}
	s := cspace.NewPointSpace(env.MedCube())
	for i, st := range []struct {
		label    string
		strategy core.Strategy
	}{
		{"no-lb", core.NoLB},
		{"repartitioning", core.Repartition},
	} {
		opts := prmOpts(sc, p, work.Hopper())
		opts.Strategy = st.strategy
		res, err := core.ParallelPRM(s, opts)
		if err != nil {
			panic(err)
		}
		t.AddRow(float64(i), float64(res.RegionRemote), float64(res.RoadmapRemote))
		t.Notes = append(t.Notes, fmt.Sprintf("strategy %d = %s", i, st.label))
	}
	return t
}

// Fig8 reproduces Figure 8: PRM execution time with all load balancing
// strategies on the Opteron cluster in (a) med-cube, (b) small-cube and
// (c) free environments.
func Fig8(sc Scale) []*metrics.Table {
	return []*metrics.Table{
		prmTimeSweep(sc, "Fig 8(a): PRM Execution Time, med-cube, Opteron",
			env.MedCube(), sc.OpteronProcs, work.OpteronCluster()),
		prmTimeSweep(sc, "Fig 8(b): PRM Execution Time, small-cube, Opteron",
			env.SmallCube(), sc.OpteronProcs, work.OpteronCluster()),
		prmTimeSweep(sc, "Fig 8(c): PRM Execution Time, free, Opteron",
			env.Free(), sc.OpteronProcs, work.OpteronCluster()),
	}
}

// Fig9 reproduces Figure 9: per-processor counts of stolen vs locally
// executed tasks under HYBRID work stealing at two processor counts,
// med-cube on Hopper.
func Fig9(sc Scale) []*metrics.Table {
	out := make([]*metrics.Table, 0, 2)
	s := cspace.NewPointSpace(env.MedCube())
	for _, p := range sc.Fig9Procs {
		opts := prmOpts(sc, p, work.Hopper())
		opts.Strategy = core.WorkStealing
		opts.Policy = steal.Hybrid{K: 8}
		res, err := core.ParallelPRM(s, opts)
		if err != nil {
			panic(err)
		}
		t := &metrics.Table{
			Title:   fmt.Sprintf("Fig 9: Stolen vs Non-Stolen Tasks on %d procs, med-cube, Hopper", p),
			XLabel:  "proc",
			Columns: []string{"stolen", "non-stolen"},
		}
		for i, ps := range res.ProcStats {
			t.AddRow(float64(i), float64(ps.TasksStolen), float64(ps.TasksLocal))
		}
		out = append(out, t)
	}
	return out
}

// Fig10 reproduces Figure 10: radial RRT execution time with work
// stealing strategies on the Opteron cluster in (a) mixed (60 % blocked),
// (b) mixed-30 (with repartitioning, showing its failure mode) and
// (c) free environments.
func Fig10(sc Scale) []*metrics.Table {
	type strat struct {
		label    string
		strategy core.Strategy
		policy   steal.Policy
	}
	base := []strat{
		{"without-lb", core.NoLB, nil},
		{"hybrid-ws", core.WorkStealing, steal.Hybrid{K: 8}},
		{"rand-8-ws", core.WorkStealing, steal.RandK{K: 8}},
		{"diffusive-ws", core.WorkStealing, steal.Diffusive{}},
	}
	withRepart := append(append([]strat{}, base...), strat{"repartitioning", core.Repartition, nil})

	sweep := func(title string, e *env.Environment, strategies []strat) *metrics.Table {
		cols := make([]string, len(strategies))
		for i, s := range strategies {
			cols[i] = s.label
		}
		t := &metrics.Table{Title: title, XLabel: "procs", Columns: cols}
		s := cspace.NewPointSpace(e)
		root := geom.V(0.5, 0.5, 0.5)
		if !s.Valid(root, nil) {
			root = findFreeRoot(s)
		}
		for _, p := range sc.RRTProcs {
			row := make([]float64, len(strategies))
			for i, st := range strategies {
				opts := rrtOpts(sc, p, work.OpteronCluster())
				opts.Strategy = st.strategy
				opts.Policy = st.policy
				res, err := core.ParallelRRT(s, root, opts)
				if err != nil {
					panic(err)
				}
				row[i] = res.TotalTime
			}
			t.AddRow(float64(p), row...)
		}
		return t
	}
	return []*metrics.Table{
		sweep("Fig 10(a): Radial RRT Execution Time, mixed, Opteron", env.Mixed(), base),
		sweep("Fig 10(b): Radial RRT Execution Time, mixed-30, Opteron", env.Mixed30(), withRepart),
		sweep("Fig 10(c): Radial RRT Execution Time, free, Opteron", env.Free(), base),
	}
}

// findFreeRoot scans for a valid root configuration on a coarse lattice.
func findFreeRoot(s *cspace.Space) cspace.Config {
	for _, x := range []float64{0.5, 0.3, 0.7, 0.1, 0.9} {
		for _, y := range []float64{0.5, 0.3, 0.7, 0.1, 0.9} {
			for _, z := range []float64{0.5, 0.3, 0.7, 0.1, 0.9} {
				q := geom.V(x, y, z)
				if s.Valid(q, nil) {
					return q
				}
			}
		}
	}
	panic("experiments: no free root found")
}

// All runs every experiment at the given scale and returns the tables in
// figure order.
func All(sc Scale) []*metrics.Table {
	var out []*metrics.Table
	out = append(out, Fig4a(sc), Fig4b(sc), Fig5a(sc), Fig5b(sc), Fig5c(sc), Fig6(sc), Fig7a(sc), Fig7b(sc))
	out = append(out, Fig8(sc)...)
	out = append(out, Fig9(sc)...)
	out = append(out, Fig10(sc)...)
	out = append(out, Repartition(sc)...)
	return out
}

// ByName runs one experiment by id ("fig4a" ... "fig10"); some ids return
// multiple tables. ok is false for unknown ids.
func ByName(id string, sc Scale) ([]*metrics.Table, bool) {
	switch id {
	case "fig4a":
		return []*metrics.Table{Fig4a(sc)}, true
	case "fig4b":
		return []*metrics.Table{Fig4b(sc)}, true
	case "fig5a":
		return []*metrics.Table{Fig5a(sc)}, true
	case "fig5b":
		return []*metrics.Table{Fig5b(sc)}, true
	case "fig5c":
		return []*metrics.Table{Fig5c(sc)}, true
	case "fig6":
		return []*metrics.Table{Fig6(sc)}, true
	case "fig7a":
		return []*metrics.Table{Fig7a(sc)}, true
	case "fig7b":
		return []*metrics.Table{Fig7b(sc)}, true
	case "fig8":
		return Fig8(sc), true
	case "fig9":
		return Fig9(sc), true
	case "fig10":
		return Fig10(sc), true
	case "ablation-decomposition":
		return []*metrics.Table{AblationDecomposition(sc)}, true
	case "ablation-stealchunk":
		return []*metrics.Table{AblationStealChunk(sc)}, true
	case "ablation-weights":
		return []*metrics.Table{AblationWeights(sc)}, true
	case "ablation-partitioner":
		return []*metrics.Table{AblationPartitioner(sc)}, true
	case "ablation-victims":
		return []*metrics.Table{AblationVictimPolicy(sc)}, true
	case "ablation-rrtstar":
		return []*metrics.Table{AblationRRTStar(sc)}, true
	case "planners":
		return Planners(sc, nil), true
	case "portfolio":
		return []*metrics.Table{PortfolioTail(sc)}, true
	case "repartition":
		return Repartition(sc), true
	case "ablations":
		return []*metrics.Table{
			AblationDecomposition(sc), AblationStealChunk(sc),
			AblationWeights(sc), AblationPartitioner(sc), AblationVictimPolicy(sc),
			AblationRRTStar(sc),
		}, true
	case "all":
		return All(sc), true
	}
	return nil, false
}

// Names lists the experiment ids understood by ByName.
func Names() []string {
	return []string{"fig4a", "fig4b", "fig5a", "fig5b", "fig5c", "fig6",
		"fig7a", "fig7b", "fig8", "fig9", "fig10",
		"ablation-decomposition", "ablation-stealchunk", "ablation-weights",
		"ablation-partitioner", "ablation-victims", "ablation-rrtstar",
		"ablations", "planners", "portfolio", "repartition", "all"}
}
