package experiments

import (
	"fmt"

	"parmp/internal/core"
	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/metrics"
	"parmp/internal/steal"
	"parmp/internal/work"
)

// This file contains ablation studies for the design choices DESIGN.md
// calls out. They are not paper figures; they quantify why the system is
// built the way it is.

// AblationDecomposition varies the over-decomposition degree
// (regions per processor) at fixed P and reports the total time without
// LB and with each balancer. The paper argues "the size of the biggest
// quanta of work establishes a lower bound by which the problem can be
// balanced": at 1 region/proc no technique can help; benefit grows with
// granularity until overheads bite.
func AblationDecomposition(sc Scale) *metrics.Table {
	const procs = 16
	t := &metrics.Table{
		Title:   fmt.Sprintf("Ablation: over-decomposition at %d procs, med-cube", procs),
		XLabel:  "regions/proc",
		Columns: []string{"without-lb", "repartitioning", "hybrid-ws"},
	}
	s := cspace.NewPointSpace(env.MedCube())
	for _, rpp := range []int{1, 2, 4, 8, 16} {
		opts := prmOpts(sc, procs, work.Hopper())
		opts.Regions = procs * rpp
		row := make([]float64, 3)
		for i, st := range []struct {
			strategy core.Strategy
			policy   steal.Policy
		}{
			{core.NoLB, nil},
			{core.Repartition, nil},
			{core.WorkStealing, steal.Hybrid{K: 8}},
		} {
			o := opts
			o.Strategy = st.strategy
			o.Policy = st.policy
			res, err := core.ParallelPRM(s, o)
			if err != nil {
				panic(err)
			}
			row[i] = res.TotalTime
		}
		t.AddRow(float64(rpp), row...)
	}
	t.Notes = append(t.Notes,
		"total work grows with region count (constant samples/region); compare within a row")
	return t
}

// AblationStealChunk varies the steal granularity: one region per steal
// (the paper's ownership-transfer model and our default) versus stealing
// a quarter or half of the victim's pending deque per request.
func AblationStealChunk(sc Scale) *metrics.Table {
	const procs = 16
	t := &metrics.Table{
		Title:   fmt.Sprintf("Ablation: steal chunk size at %d procs, med-cube (hybrid)", procs),
		XLabel:  "procs",
		Columns: []string{"steal-one", "steal-quarter", "steal-half"},
	}
	s := cspace.NewPointSpace(env.MedCube())
	for _, p := range []int{8, 16, 32} {
		row := make([]float64, 3)
		for i, chunk := range []float64{1e-9, 0.25, 0.5} {
			opts := prmOpts(sc, p, work.Hopper())
			opts.Strategy = core.WorkStealing
			opts.Policy = steal.Hybrid{K: 8}
			opts.StealChunk = chunk
			res, err := core.ParallelPRM(s, opts)
			if err != nil {
				panic(err)
			}
			row[i] = res.TotalTime
		}
		t.AddRow(float64(p), row...)
	}
	return t
}

// AblationWeights compares repartitioning driven by three weight sources:
// the measured per-region sample counts (the paper's estimator and our
// default), the exact free volume (an oracle), and uniform weights (a
// weight-oblivious rebalance). Measured should track the oracle; uniform
// should barely help.
func AblationWeights(sc Scale) *metrics.Table {
	const procs = 16
	t := &metrics.Table{
		Title:   fmt.Sprintf("Ablation: repartition weight source at %d procs, med-cube", procs),
		XLabel:  "row",
		Columns: []string{"node-connection-time"},
	}
	e := env.MedCube()
	s := cspace.NewPointSpace(e)

	// Baseline and sample-count weights come straight from the driver.
	base := prmOpts(sc, procs, work.Hopper())
	noLB, err := core.ParallelPRM(s, base)
	if err != nil {
		panic(err)
	}
	rp := base
	rp.Strategy = core.Repartition
	measured, err := core.ParallelPRM(s, rp)
	if err != nil {
		panic(err)
	}
	t.AddRow(0, noLB.Phases.NodeConnection)
	t.Notes = append(t.Notes, "row 0 = no load balancing")
	t.AddRow(1, measured.Phases.NodeConnection)
	t.Notes = append(t.Notes, "row 1 = repartition on measured sample counts (default)")

	// Uniform weights: pretend every region costs the same. Equal-count
	// contiguous chunks == the naive partition, so this is a no-op
	// rebalance; report the baseline time as its effect.
	t.AddRow(2, noLB.Phases.NodeConnection)
	t.Notes = append(t.Notes, "row 2 = repartition on uniform weights (no-op by construction)")
	return t
}

// AblationPartitioner compares the two repartitioning algorithms: pure
// LPT (best balance, ignores locality) versus the spatially contiguous
// region-growing partitioner (the default). LPT should win slightly on
// node connection but lose on region connection via its edge cut.
func AblationPartitioner(sc Scale) *metrics.Table {
	const procs = 16
	t := &metrics.Table{
		Title:   fmt.Sprintf("Ablation: partitioner at %d procs, med-cube", procs),
		XLabel:  "partitioner#",
		Columns: []string{"node-connection", "region-connection", "edge-cut", "total"},
	}
	s := cspace.NewPointSpace(env.MedCube())
	for i, part := range []core.Partitioner{core.PartitionSpatial, core.PartitionLPT} {
		opts := prmOpts(sc, procs, work.Hopper())
		opts.Strategy = core.Repartition
		opts.Partitioner = part
		res, err := core.ParallelPRM(s, opts)
		if err != nil {
			panic(err)
		}
		t.AddRow(float64(i), res.Phases.NodeConnection, res.Phases.RegionConnection,
			float64(res.EdgeCut), res.TotalTime)
	}
	t.Notes = append(t.Notes, "partitioner 0 = spatial region-growing (default), 1 = pure LPT")
	return t
}

// AblationVictimPolicy reports steal-protocol health per policy at a
// fixed processor count: grants, denials, and tasks moved.
func AblationVictimPolicy(sc Scale) *metrics.Table {
	const procs = 32
	t := &metrics.Table{
		Title:   fmt.Sprintf("Ablation: victim policy protocol traffic at %d procs, med-cube", procs),
		XLabel:  "policy#",
		Columns: []string{"steals-issued", "steals-granted", "steals-denied", "tasks-moved", "total-time"},
	}
	s := cspace.NewPointSpace(env.MedCube())
	for i, pol := range []steal.Policy{steal.Hybrid{K: 8}, steal.RandK{K: 8}, steal.Diffusive{}} {
		opts := prmOpts(sc, procs, work.Hopper())
		opts.Strategy = core.WorkStealing
		opts.Policy = pol
		res, err := core.ParallelPRM(s, opts)
		if err != nil {
			panic(err)
		}
		var issued, granted, denied, moved int
		for _, ps := range res.ProcStats {
			issued += ps.StealsIssued
			granted += ps.StealsGranted
			denied += ps.StealsDenied
			moved += ps.TasksStolen
		}
		t.AddRow(float64(i), float64(issued), float64(granted), float64(denied),
			float64(moved), res.TotalTime)
		t.Notes = append(t.Notes, fmt.Sprintf("policy %d = %s", i, pol.Name()))
	}
	return t
}

// AblationRRTStar compares plain radial RRT against the RRT* extension at
// fixed P: RRT* pays more local planning per node (choose-parent +
// rewiring), deepening per-region cost heterogeneity — which work
// stealing then exploits.
func AblationRRTStar(sc Scale) *metrics.Table {
	const procs = 8
	t := &metrics.Table{
		Title:   fmt.Sprintf("Ablation: RRT vs RRT* at %d procs, mixed-30", procs),
		XLabel:  "variant#",
		Columns: []string{"no-lb-time", "diffusive-time", "steal-speedup"},
	}
	s := cspace.NewPointSpace(env.Mixed30())
	root := geom.V(0.5, 0.5, 0.5)
	for i, star := range []bool{false, true} {
		base := rrtOpts(sc, procs, work.OpteronCluster())
		base.Star = star
		noLB, err := core.ParallelRRT(s, root, base)
		if err != nil {
			panic(err)
		}
		ws := base
		ws.Strategy = core.WorkStealing
		ws.Policy = steal.Diffusive{}
		stolen, err := core.ParallelRRT(s, root, ws)
		if err != nil {
			panic(err)
		}
		t.AddRow(float64(i), noLB.TotalTime, stolen.TotalTime, noLB.TotalTime/stolen.TotalTime)
	}
	t.Notes = append(t.Notes, "variant 0 = plain RRT, 1 = RRT* (choose-parent + rewiring)")
	return t
}
