package experiments

import (
	"fmt"

	"parmp/internal/core"
	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/metrics"
	"parmp/internal/work"
)

// repartRounds is the growth-round budget for the closed-loop
// repartitioning experiment: the cost model needs warm rounds to act, so
// single-shot runs cannot show it.
func repartRounds(sc Scale) int {
	if sc.RepartRounds > 0 {
		return sc.RepartRounds
	}
	return 4
}

// repartCombo is one CostModel × Rebalance configuration under test.
type repartCombo struct {
	label string
	cm    core.CostModelKind
	rb    core.RebalanceKind
}

var repartCombos = []repartCombo{
	{"static/none", core.CostStatic, core.RebalanceNone},
	{"static/diffusive", core.CostStatic, core.RebalanceDiffusive},
	{"observed/none", core.CostObserved, core.RebalanceNone},
	{"observed/diffusive", core.CostObserved, core.RebalanceDiffusive},
}

// RepartitionRRT measures whether observed-cost weighting rescues RRT
// repartitioning from the paper's failure mode: cumulative virtual time
// over multiple growth rounds, sweeping processor counts, comparing no
// load balancing against repartitioning on k-ray weights (the paper's
// estimator), on EWMA-observed branch costs, and observed costs plus the
// between-rounds diffusive rebalance.
func RepartitionRRT(sc Scale, e *env.Environment, title string) *metrics.Table {
	t := &metrics.Table{
		Title:  title,
		XLabel: "procs",
		Columns: []string{
			"without-lb", "repart-kray", "repart-observed", "repart-obs-diffusive",
		},
	}
	s := cspace.NewPointSpace(e)
	root := geom.V(0.5, 0.5, 0.5)
	if !s.Valid(root, nil) {
		root = findFreeRoot(s)
	}
	rounds := repartRounds(sc)
	run := func(opts core.Options) float64 {
		eng, err := core.NewRRTEngine(s, root, opts)
		if err != nil {
			panic(err)
		}
		for r := 0; r < rounds; r++ {
			if err := eng.GrowRound(nil); err != nil {
				panic(err)
			}
		}
		return eng.Result().TotalTime
	}
	for _, p := range sc.RRTProcs {
		base := rrtOpts(sc, p, work.OpteronCluster())

		noLB := base
		noLB.Strategy = core.NoLB

		kray := base
		kray.Strategy = core.Repartition

		observed := kray
		observed.CostModel = core.CostObserved

		diffusive := observed
		diffusive.Rebalance = core.RebalanceDiffusive

		t.AddRow(float64(p), run(noLB), run(kray), run(observed), run(diffusive))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("cumulative virtual time over %d growth rounds", rounds))
	return t
}

// repartPRMOpts is the PRM configuration of the cost-model comparison:
// a coarse decomposition with few samples per region per round and plain
// uniform sampling. In this regime per-sample connection cost varies
// strongly across regions, so a task-count weight (this round's sample
// counts) is a poor load estimate and the observed model has something
// to learn. With many samples per fine region (the Fig 5-8 shape)
// per-sample cost homogenizes and zero-lag sample counts are already
// near-perfect — see EXPERIMENTS.md for that boundary.
func repartPRMOpts(sc Scale) core.Options {
	return core.Options{
		Procs:            sc.ProfileProcs / 2,
		Regions:          sc.PRMRegions / 4,
		SamplesPerRegion: 5,
		ConnectK:         3,
		Profile:          work.Hopper(),
		Seed:             sc.Seed,
		Strategy:         core.Repartition,
	}
}

// RepartitionPRMCV compares PRM construct-phase imbalance (per-worker
// busy-time CV) round by round when repartitioning weights come from
// this round's sample counts (the static estimate) versus the observed
// per-sample cost model. Round 0 is identical by construction (the
// cold-start fallback); the observed series must win once warm on
// environments where per-sample connection cost varies by region.
func RepartitionPRMCV(sc Scale, e *env.Environment, title string) *metrics.Table {
	t := &metrics.Table{
		Title:   title,
		XLabel:  "round",
		Columns: []string{"sample-count-cv", "observed-cv"},
	}
	s := cspace.NewPointSpace(e)
	rounds := repartRounds(sc)
	run := func(cm core.CostModelKind) []float64 {
		opts := repartPRMOpts(sc)
		opts.CostModel = cm
		eng, err := core.NewPRMEngine(s, opts)
		if err != nil {
			panic(err)
		}
		for r := 0; r < rounds; r++ {
			if err := eng.GrowRound(nil); err != nil {
				panic(err)
			}
		}
		var cvs []float64
		for _, pr := range eng.Result().PhaseReports {
			if pr.Phase != "construct" {
				continue
			}
			busy := make([]float64, len(pr.Report.Workers))
			for i, ws := range pr.Report.Workers {
				busy[i] = ws.Busy
			}
			cvs = append(cvs, metrics.CV(busy))
		}
		return cvs
	}
	static := run(core.CostStatic)
	observed := run(core.CostObserved)
	for r := 0; r < len(static) && r < len(observed); r++ {
		t.AddRow(float64(r), static[r], observed[r])
	}
	o := repartPRMOpts(sc)
	t.Notes = append(t.Notes,
		fmt.Sprintf("construct-phase busy-time CV, %d procs, %d regions, %d samples/region/round",
			o.Procs, o.Regions, o.SamplesPerRegion))
	return t
}

// RepartitionCombos crosses CostModel × Rebalance on a multi-round PRM
// under repartitioning: cumulative virtual time, warm-round construct
// CV, and the two migration counters, one row per combination.
func RepartitionCombos(sc Scale, e *env.Environment, title string) *metrics.Table {
	t := &metrics.Table{
		Title:   title,
		XLabel:  "combo",
		Columns: []string{"total-time", "construct-cv-warm", "migrated", "diffused"},
	}
	s := cspace.NewPointSpace(e)
	rounds := repartRounds(sc)
	for i, c := range repartCombos {
		opts := repartPRMOpts(sc)
		opts.CostModel = c.cm
		opts.Rebalance = c.rb
		eng, err := core.NewPRMEngine(s, opts)
		if err != nil {
			panic(err)
		}
		for r := 0; r < rounds; r++ {
			if err := eng.GrowRound(nil); err != nil {
				panic(err)
			}
		}
		res := eng.Result()
		var cvSum float64
		var cvN int
		round := 0
		for _, pr := range res.PhaseReports {
			if pr.Phase != "construct" {
				continue
			}
			if round >= 1 {
				busy := make([]float64, len(pr.Report.Workers))
				for j, ws := range pr.Report.Workers {
					busy[j] = ws.Busy
				}
				cvSum += metrics.CV(busy)
				cvN++
			}
			round++
		}
		cv := 0.0
		if cvN > 0 {
			cv = cvSum / float64(cvN)
		}
		t.AddRow(float64(i), res.TotalTime, cv,
			float64(res.MigratedRegions), float64(res.DiffusedRegions))
		t.Notes = append(t.Notes, fmt.Sprintf("combo %d = %s", i, c.label))
	}
	o := repartPRMOpts(sc)
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d rounds, %d procs, %d regions", rounds, o.Procs, o.Regions))
	return t
}

// Repartition runs the closed-loop load-balancing experiment: the RRT
// repartitioning flip test on mixed-30 (the paper's failure-mode
// environment, Fig 10(b)) and free, the PRM round-by-round CV comparison
// on mixed (heterogeneous per-sample cost) and med-cube (homogeneous —
// where zero-lag sample counts remain competitive), and the four-way
// CostModel × Rebalance cross.
func Repartition(sc Scale) []*metrics.Table {
	return []*metrics.Table{
		RepartitionRRT(sc, env.Mixed30(),
			"Repartition: RRT Cumulative Time, mixed-30, Opteron"),
		RepartitionRRT(sc, env.Free(),
			"Repartition: RRT Cumulative Time, free, Opteron"),
		RepartitionPRMCV(sc, env.Mixed(),
			"Repartition: PRM Construct CV by Round, mixed, Hopper"),
		RepartitionPRMCV(sc, env.MedCube(),
			"Repartition: PRM Construct CV by Round, med-cube, Hopper"),
		RepartitionCombos(sc, env.Mixed(),
			"Repartition: CostModel x Rebalance, mixed, Hopper"),
	}
}
