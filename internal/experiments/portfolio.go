package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"parmp"
	"parmp/internal/env"
	"parmp/internal/metrics"
	"parmp/internal/servebench"
)

// portfolioMaxWaves censors a run that has not solved: stuck RRT-Connect
// trees grow superlinearly expensive per wave, so an uncapped stuck run
// dominates the experiment's wall clock without changing its verdict.
// Censored runs report the elapsed time at the cutoff — a lower bound on
// the true solve time, which only understates the single-config tail the
// portfolio is beating.
const portfolioMaxWaves = 1024

// portfolioUnitRounds is the Luby base budget. The walls query solves in
// roughly 200-360 rounds when the bidirectional search is not stuck, so
// one unit comfortably covers a healthy run and a restart only fires on
// the stuck ones it is meant to kill.
const portfolioUnitRounds = 384

// portfolioOpts sizes one racer's engine for the tail experiment:
// deliberately lean rounds (two nodes per region, eight regions) so
// rounds stay cheap and time-to-first-solution is dominated by whether
// the seed's bidirectional trees lock onto the right doorways — the
// heavy-tailed regime the portfolio is built for.
func portfolioOpts(e *env.Environment, seed uint64) parmp.Options {
	var d2 float64
	for d := 0; d < e.Dim(); d++ {
		span := e.Bounds.Hi[d] - e.Bounds.Lo[d]
		d2 += span * span
	}
	return parmp.Options{
		Procs:            2,
		Regions:          8,
		SamplesPerRegion: 4,
		NodesPerRegion:   2,
		Step:             0.05,
		GoalBias:         0.1,
		Radius:           math.Sqrt(d2),
		RegionK:          4,
		Strategy:         parmp.Repartition,
		Seed:             seed,
	}
}

// portfolioRun measures wall-clock milliseconds to first solution for one
// configuration. Runs that hit the wave cutoff are censored (solved
// false) and report elapsed time at the cutoff. The race report is
// returned for overhead accounting either way.
func portfolioRun(space *parmp.Space, start, goal parmp.Config, opts parmp.Options, po parmp.PortfolioOptions) (float64, *parmp.PortfolioReport, bool) {
	pf, err := parmp.NewPortfolio(space, start, goal, opts, po)
	if err != nil {
		panic(err)
	}
	t0 := time.Now()
	_, err = pf.Solve(context.Background())
	ms := float64(time.Since(t0).Microseconds()) / 1000
	if err != nil && !errors.Is(err, parmp.ErrNoSolution) {
		panic(fmt.Sprintf("experiments: portfolio run failed: %v", err))
	}
	return ms, pf.Report(), err == nil
}

// PortfolioTail measures the tail of time-to-first-solution on the
// narrow-passage walls environment. RRT-Connect there is classically
// heavy-tailed: most seeds thread the doorways in a few hundred rounds,
// but a fraction lock both trees onto mismatched doors and stay stuck
// essentially forever. The table races one single-seed RRT-Connect
// configuration against two 4-racer portfolios over derived seeds — one
// without restarts (seed diversity alone) and one on the Luby schedule —
// through the identical parmp.Portfolio machinery, so the comparison
// isolates the portfolio effect, not code-path differences. The notes
// quantify p50/p99/p999 per column, censored-run counts, and the losers'
// cancellation overhead (rounds grown by non-winning racers per solved
// query).
func PortfolioTail(sc Scale) *metrics.Table {
	trials := sc.PortfolioTrials
	if trials <= 0 {
		trials = 12
	}
	e := env.ByName("walls")
	space := parmp.NewPointSpace(e)
	start := make(parmp.Config, e.Dim())
	goal := make(parmp.Config, e.Dim())
	for d := range start {
		start[d] = e.Bounds.Lo[d] + 0.05*(e.Bounds.Hi[d]-e.Bounds.Lo[d])
		goal[d] = e.Bounds.Lo[d] + 0.95*(e.Bounds.Hi[d]-e.Bounds.Lo[d])
	}

	configs := []struct {
		label string
		po    parmp.PortfolioOptions
	}{
		{"single-rrtconnect-ms", parmp.PortfolioOptions{
			Racers: 1, Planners: []string{"rrtconnect"}, Restarts: "none", MaxWaves: portfolioMaxWaves}},
		{"portfolio4-seeds-ms", parmp.PortfolioOptions{
			Racers: 4, Planners: []string{"rrtconnect"}, Restarts: "none", MaxWaves: portfolioMaxWaves}},
		{"portfolio4-luby-ms", parmp.PortfolioOptions{
			Racers: 4, Planners: []string{"rrtconnect"}, Restarts: "luby", UnitRounds: portfolioUnitRounds, MaxWaves: portfolioMaxWaves}},
	}
	cols := make([]string, len(configs))
	samples := make([][]float64, len(configs))
	censored := make([]int, len(configs))
	for i, c := range configs {
		cols[i] = c.label
		samples[i] = make([]float64, 0, trials)
	}
	t := &metrics.Table{
		Title:   fmt.Sprintf("Portfolio vs Single Config: Time to First Solution, walls (%d trials, wall clock)", trials),
		XLabel:  "trial#",
		Columns: cols,
	}
	var loserRounds, winnerRounds, stopped, restarts, lubySolved int
	for i := 0; i < trials; i++ {
		row := make([]float64, len(configs))
		for j, c := range configs {
			ms, rep, solved := portfolioRun(space, start, goal, portfolioOpts(e, sc.Seed+uint64(i)), c.po)
			row[j] = ms
			samples[j] = append(samples[j], ms)
			if !solved {
				censored[j]++
			}
			if c.po.Restarts == "luby" && solved {
				lubySolved++
				restarts += rep.Restarts
				for ri, rr := range rep.Racers {
					if ri == rep.Winner {
						winnerRounds += rr.Rounds
					} else {
						loserRounds += rr.Rounds
					}
					if rr.Stopped {
						stopped++
					}
				}
			}
		}
		t.AddRow(float64(i), row...)
	}
	for j, c := range configs {
		p := servebench.Compute(samples[j])
		t.Notes = append(t.Notes, fmt.Sprintf("%s: p50=%.0fms p99=%.0fms p999=%.0fms max=%.0fms censored=%d/%d",
			c.label, p.P50, p.P99, p.P999, p.Max, censored[j], trials))
	}
	singleP99 := servebench.Compute(samples[0]).P99
	pfP99 := servebench.Compute(samples[2]).P99
	t.Notes = append(t.Notes, fmt.Sprintf("portfolio4-luby p99 vs single p99: %.0fms vs %.0fms (%.2fx better)",
		pfP99, singleP99, singleP99/pfP99))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"censored runs hit the %d-wave cutoff unsolved and report elapsed time at the cutoff (a lower bound)",
		portfolioMaxWaves))
	if lubySolved > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"luby portfolio loser overhead: %.0f loser rounds per solved query (winner %.0f), %.1f racers cancelled mid-race, %.2f Luby restarts per query",
			float64(loserRounds)/float64(lubySolved), float64(winnerRounds)/float64(lubySolved),
			float64(stopped)/float64(lubySolved), float64(restarts)/float64(lubySolved)))
	}
	return t
}
