package experiments

import (
	"strings"
	"testing"

	"parmp/internal/metrics"
)

// tiny returns a minimal scale so the whole figure set runs in seconds.
func tiny() Scale {
	return Scale{
		Name:             "tiny",
		ModelProcs:       []int{2, 4, 8},
		ModelImpProcs:    []int{4, 8},
		ModelGrid:        8,
		PRMProcs:         []int{4, 8},
		PRMHighProcs:     []int{8, 16},
		ProfileProcs:     8,
		RemoteProcs:      8,
		Fig9Procs:        [2]int{4, 16},
		OpteronProcs:     []int{4, 8},
		RRTProcs:         []int{2, 4},
		PRMRegions:       64,
		PRMHighRegions:   128,
		SamplesPerRegion: 16,
		RRTRegions:       32,
		NodesPerRegion:   6,
		Seed:             7,
		RaceSeeds:        2,
		RaceRounds:       4,
	}
}

func TestScaleByName(t *testing.T) {
	if sc, ok := ScaleByName("quick"); !ok || sc.Name != "quick" {
		t.Fatal("quick scale lookup failed")
	}
	if sc, ok := ScaleByName("full"); !ok || sc.Name != "full" {
		t.Fatal("full scale lookup failed")
	}
	if _, ok := ScaleByName("huge"); ok {
		t.Fatal("unknown scale should fail")
	}
}

func TestFig4aShape(t *testing.T) {
	tb := Fig4a(tiny())
	if len(tb.XS) != 3 || len(tb.Columns) != 4 {
		t.Fatalf("shape: %d rows %d cols", len(tb.XS), len(tb.Columns))
	}
	naive := tb.Column("model-imbalance")
	best := tb.Column("model-improvement")
	for i := range naive {
		if best[i] > naive[i]+1e-9 {
			t.Fatalf("row %d: best CV %v above naive %v", i, best[i], naive[i])
		}
	}
	// Experimental imbalance should track the model within a loose factor.
	expCV := tb.Column("experimental-imbalance")
	for i := range expCV {
		if naive[i] > 0.05 && expCV[i] <= 0 {
			t.Fatalf("row %d: experiment shows no imbalance while model does", i)
		}
	}
}

func TestFig4bShape(t *testing.T) {
	tb := Fig4b(tiny())
	theo := tb.Column("theoretical-pct")
	exp := tb.Column("experimental-pct")
	run := tb.Column("runtime-pct")
	for i := range theo {
		if theo[i] < 0 || theo[i] > 100 || exp[i] < 0 || exp[i] > 100 || run[i] < 0 || run[i] > 100 {
			t.Fatalf("row %d: percentages out of range: %v %v %v", i, theo[i], exp[i], run[i])
		}
	}
	// At low proc counts improvement must be genuinely positive.
	if theo[0] <= 0 || exp[0] <= 0 {
		t.Fatalf("first row should show improvement: theo=%v exp=%v", theo[0], exp[0])
	}
}

func TestFig5aShapes(t *testing.T) {
	tb := Fig5a(tiny())
	noLB := tb.Column("without-lb")
	rp := tb.Column("repartitioning")
	hybrid := tb.Column("hybrid-ws")
	for i := range noLB {
		// Load balancing should never be dramatically worse than the
		// baseline in the imbalanced med-cube.
		if rp[i] > noLB[i]*1.1 {
			t.Fatalf("row %d: repartitioning %v much worse than noLB %v", i, rp[i], noLB[i])
		}
		if hybrid[i] > noLB[i]*1.2 {
			t.Fatalf("row %d: hybrid %v much worse than noLB %v", i, hybrid[i], noLB[i])
		}
	}
	// At the lowest processor count repartitioning must win clearly.
	if rp[0] >= noLB[0] {
		t.Fatalf("repartitioning should beat noLB at low P: %v vs %v", rp[0], noLB[0])
	}
}

func TestFig5bCVDrops(t *testing.T) {
	tb := Fig5b(tiny())
	before := tb.Column("before-repartitioning")
	after := tb.Column("after-repartitioning")
	for i := range before {
		if after[i] > before[i]+1e-9 {
			t.Fatalf("row %d: CV after %v above before %v", i, after[i], before[i])
		}
	}
	if before[0] <= 0 {
		t.Fatal("med-cube should show imbalance before repartitioning")
	}
}

func TestFig5cProfile(t *testing.T) {
	sc := tiny()
	tb := Fig5c(sc)
	if len(tb.XS) != sc.ProfileProcs {
		t.Fatalf("rows = %d, want %d", len(tb.XS), sc.ProfileProcs)
	}
	noLB := tb.Column("without-lb")
	rp := tb.Column("repartitioning")
	ideal := tb.Column("ideal")
	// Profiles are sorted descending; spread of noLB must exceed spread
	// of repartitioned; ideal is flat.
	if noLB[0]-noLB[len(noLB)-1] <= rp[0]-rp[len(rp)-1] {
		t.Fatalf("repartitioning should flatten the profile: noLB spread %v, rp spread %v",
			noLB[0]-noLB[len(noLB)-1], rp[0]-rp[len(rp)-1])
	}
	for i := 1; i < len(ideal); i++ {
		if ideal[i] != ideal[0] {
			t.Fatal("ideal profile must be flat")
		}
	}
}

func TestFig6HighScale(t *testing.T) {
	tb := Fig6(tiny())
	noLB := tb.Column("without-lb")
	rp := tb.Column("repartitioning")
	if rp[0] >= noLB[0] {
		t.Fatalf("repartitioning should win at %v procs: %v vs %v", tb.XS[0], rp[0], noLB[0])
	}
}

func TestFig7aBreakdown(t *testing.T) {
	tb := Fig7a(tiny())
	if len(tb.XS) != 4 {
		t.Fatalf("rows = %d, want 4 strategies", len(tb.XS))
	}
	nc := tb.Column("node-connection")
	// Node connection dominates the baseline run (paper: ~90%).
	rc := tb.Column("region-connection")
	other := tb.Column("other")
	frac := nc[0] / (nc[0] + rc[0] + other[0])
	if frac < 0.5 {
		t.Fatalf("node connection should dominate the no-LB run, got fraction %v", frac)
	}
	// Load-balanced rows should cut node connection vs row 0 (no-lb).
	if nc[1] >= nc[0] {
		t.Fatalf("repartitioning should cut node connection: %v vs %v", nc[1], nc[0])
	}
}

func TestFig7bRemoteAccesses(t *testing.T) {
	tb := Fig7b(tiny())
	region := tb.Column("region-graph")
	roadmap := tb.Column("roadmap-graph")
	// Row 0 = no-lb, row 1 = repartitioning: repartitioning increases
	// remote accesses (paper Fig 7(b)).
	if region[1] <= region[0] {
		t.Fatalf("repartitioning should raise region-graph remote accesses: %v vs %v", region[1], region[0])
	}
	if roadmap[1] <= roadmap[0] {
		t.Fatalf("repartitioning should raise roadmap remote accesses: %v vs %v", roadmap[1], roadmap[0])
	}
}

func TestFig8ThreeEnvironments(t *testing.T) {
	tables := Fig8(tiny())
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	// med-cube: repartitioning wins at low P. free: nothing loses badly.
	med := tables[0]
	if med.Column("repartitioning")[0] >= med.Column("without-lb")[0] {
		t.Fatal("med-cube repartitioning should win")
	}
	free := tables[2]
	noLB := free.Column("without-lb")
	for _, col := range []string{"repartitioning", "hybrid-ws", "rand-8-ws"} {
		vals := free.Column(col)
		for i := range vals {
			if vals[i] > noLB[i]*1.35 {
				t.Fatalf("free env: %s row %d overhead too high: %v vs %v", col, i, vals[i], noLB[i])
			}
		}
	}
}

func TestFig9TaskDistribution(t *testing.T) {
	tables := Fig9(tiny())
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	for ti, tb := range tables {
		stolen := tb.Column("stolen")
		local := tb.Column("non-stolen")
		totalStolen, totalLocal := metrics.Sum(stolen), metrics.Sum(local)
		if totalLocal <= 0 {
			t.Fatalf("table %d: no local tasks", ti)
		}
		if totalStolen < 0 {
			t.Fatalf("table %d: negative stolen count", ti)
		}
	}
	// Paper: "at higher processor counts ... few processors are able to
	// find work once they have exhausted their local regions" — the
	// per-processor count of executed stolen tasks shrinks under strong
	// scaling (Fig 9(b) vs 9(a)).
	perProcLow := metrics.Mean(tables[0].Column("stolen"))
	perProcHigh := metrics.Mean(tables[1].Column("stolen"))
	if perProcHigh > perProcLow {
		t.Fatalf("stolen tasks per proc should shrink with P: low=%v high=%v", perProcLow, perProcHigh)
	}
}

func TestFig10RRT(t *testing.T) {
	tables := Fig10(tiny())
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	mixed := tables[0]
	noLB := mixed.Column("without-lb")
	diff := mixed.Column("diffusive-ws")
	// In the heavily blocked mixed env, diffusive stealing should help at
	// low P (paper: 2.0x at 32 cores).
	if diff[0] >= noLB[0] {
		t.Fatalf("diffusive should beat noLB in mixed at low P: %v vs %v", diff[0], noLB[0])
	}
	// Free environment: no strategy catastrophically worse.
	free := tables[2]
	freeNoLB := free.Column("without-lb")
	for _, col := range []string{"hybrid-ws", "rand-8-ws", "diffusive-ws"} {
		vals := free.Column(col)
		for i := range vals {
			if vals[i] > freeNoLB[i]*1.35 {
				t.Fatalf("free env %s row %d overhead: %v vs %v", col, i, vals[i], freeNoLB[i])
			}
		}
	}
}

func TestByNameCoversAll(t *testing.T) {
	sc := tiny()
	for _, id := range Names() {
		if id == "all" {
			continue
		}
		tables, ok := ByName(id, sc)
		if !ok || len(tables) == 0 {
			t.Fatalf("ByName(%q) failed", id)
		}
		for _, tb := range tables {
			if tb.Title == "" || len(tb.XS) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			lower := strings.ToLower(tb.Title)
			if !strings.Contains(lower, "fig") && !strings.Contains(lower, "ablation") &&
				!strings.Contains(lower, "rrt vs rrt-connect") &&
				!strings.Contains(lower, "repartition") {
				t.Fatalf("%s: title %q does not name a figure, ablation, planner race or repartition study", id, tb.Title)
			}
		}
	}
	if _, ok := ByName("fig99", sc); ok {
		t.Fatal("unknown experiment should fail")
	}
}

func TestAblationDecompositionGranularityBound(t *testing.T) {
	tb := AblationDecomposition(tiny())
	noLB := tb.Column("without-lb")
	rp := tb.Column("repartitioning")
	// At 1 region/proc no balancer can improve anything.
	if rp[0] < noLB[0]*0.99 {
		t.Fatalf("1 region/proc should be unbalanceable: %v vs %v", rp[0], noLB[0])
	}
	// At the largest decomposition repartitioning must win.
	last := len(noLB) - 1
	if rp[last] >= noLB[last] {
		t.Fatalf("high decomposition should benefit: %v vs %v", rp[last], noLB[last])
	}
}

func TestAblationPartitionerTradeoff(t *testing.T) {
	tb := AblationPartitioner(tiny())
	nc := tb.Column("node-connection")
	rc := tb.Column("region-connection")
	cut := tb.Column("edge-cut")
	// LPT (row 1) balances at least as well but cuts more edges.
	if nc[1] > nc[0]*1.05 {
		t.Fatalf("LPT node connection should not be much worse: %v vs %v", nc[1], nc[0])
	}
	if cut[1] <= cut[0] {
		t.Fatalf("LPT should cut more edges: %v vs %v", cut[1], cut[0])
	}
	// The extra cut edges cost region-connection time, but at this tiny
	// scale the two partitioners' totals are within a fraction of a
	// percent of each other (fail-fast local plans stop rejected edges at
	// slightly different counter totals), so allow a hair of slack — the
	// edge-cut assertion above carries the tradeoff signal.
	if rc[1] < rc[0]*0.99 {
		t.Fatalf("LPT should not pay less region connection: %v vs %v", rc[1], rc[0])
	}
}

func TestAblationVictimPolicyAccounting(t *testing.T) {
	tb := AblationVictimPolicy(tiny())
	issued := tb.Column("steals-issued")
	granted := tb.Column("steals-granted")
	denied := tb.Column("steals-denied")
	for i := range issued {
		if issued[i] < granted[i]+denied[i] {
			t.Fatalf("row %d: issued %v < granted %v + denied %v", i, issued[i], granted[i], denied[i])
		}
		if granted[i] <= 0 {
			t.Fatalf("row %d: no steals granted on an imbalanced workload", i)
		}
	}
}

func TestAblationStealChunkRuns(t *testing.T) {
	tb := AblationStealChunk(tiny())
	for _, col := range tb.Columns {
		for i, v := range tb.Column(col) {
			if v <= 0 {
				t.Fatalf("%s row %d: non-positive time", col, i)
			}
		}
	}
}

func TestAblationWeightsShape(t *testing.T) {
	tb := AblationWeights(tiny())
	times := tb.Column("node-connection-time")
	if times[1] >= times[0] {
		t.Fatalf("measured-weight repartitioning should beat baseline: %v vs %v", times[1], times[0])
	}
	if times[2] != times[0] {
		t.Fatal("uniform-weight rebalance must be a no-op")
	}
}

func TestAblationRRTStar(t *testing.T) {
	tb := AblationRRTStar(tiny())
	noLB := tb.Column("no-lb-time")
	// RRT* costs strictly more than plain RRT for the same node budget.
	if noLB[1] <= noLB[0] {
		t.Fatalf("RRT* should cost more: %v vs %v", noLB[1], noLB[0])
	}
	for _, v := range tb.Column("steal-speedup") {
		if v <= 0 {
			t.Fatal("speedup must be positive")
		}
	}
}
