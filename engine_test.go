package parmp

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

func testEngineOpts() Options {
	return Options{
		Procs:            8,
		Regions:          64,
		SamplesPerRegion: 10,
		Strategy:         Repartition,
		Seed:             1,
	}
}

func roadmapBytes(t *testing.T, m *Roadmap) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// One engine growth round must be bit-identical to the one-shot
// planner: PlanPRM is specified as exactly round 0 of a PRM engine.
func TestEngineRoundZeroMatchesPlanPRM(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("med-cube"))
	opts := testEngineOpts()
	oneShot, err := PlanPRM(space, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Grow(context.Background()); err != nil {
		t.Fatal(err)
	}
	res := eng.Snapshot().PRM()
	if got, want := roadmapBytes(t, res.Roadmap), roadmapBytes(t, oneShot.Roadmap); !bytes.Equal(got, want) {
		t.Fatalf("round-0 roadmap differs from PlanPRM (%d vs %d bytes)", len(got), len(want))
	}
	if res.TotalTime != oneShot.TotalTime {
		t.Fatalf("round-0 virtual time %v != one-shot %v", res.TotalTime, oneShot.TotalTime)
	}
}

// Same contract for RRT: PlanRRT is exactly round 0 of an RRT engine.
func TestEngineRRTRoundZeroMatchesPlanRRT(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("mixed-30"))
	root := V(0.5, 0.5, 0.5)
	opts := Options{Procs: 4, Regions: 32, NodesPerRegion: 20, Strategy: WorkStealing, Policy: RandK(4), Seed: 7}
	oneShot, err := PlanRRT(space, root, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewRRTEngine(space, root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Grow(context.Background()); err != nil {
		t.Fatal(err)
	}
	res := eng.Snapshot().RRT()
	if res.TotalNodes() != oneShot.TotalNodes() {
		t.Fatalf("round-0 nodes %d != one-shot %d", res.TotalNodes(), oneShot.TotalNodes())
	}
	if len(res.Bridges) != len(oneShot.Bridges) || res.PrunedCycles != oneShot.PrunedCycles {
		t.Fatalf("round-0 bridges/pruned %d/%d != one-shot %d/%d",
			len(res.Bridges), res.PrunedCycles, len(oneShot.Bridges), oneShot.PrunedCycles)
	}
	if res.TotalTime != oneShot.TotalTime {
		t.Fatalf("round-0 virtual time %v != one-shot %v", res.TotalTime, oneShot.TotalTime)
	}
	for i, b := range res.Branches {
		if b.Len() != oneShot.Branches[i].Len() {
			t.Fatalf("branch %d: %d nodes vs one-shot %d", i, b.Len(), oneShot.Branches[i].Len())
		}
		for j, n := range b.Nodes {
			if !n.Q.Equal(oneShot.Branches[i].Nodes[j].Q, 0) || n.Parent != oneShot.Branches[i].Nodes[j].Parent {
				t.Fatalf("branch %d node %d differs", i, j)
			}
		}
	}
}

// Growing N rounds must not depend on how the calls are batched: the
// engine's state is a pure function of (options, committed rounds).
func TestEngineDeterministicAcrossCalls(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("med-cube"))
	opts := testEngineOpts()
	const rounds = 3

	batched, err := NewEngine(space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := batched.GrowN(context.Background(), rounds); err != nil {
		t.Fatal(err)
	}
	stepped, err := NewEngine(space, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		if err := stepped.Grow(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	a := batched.Snapshot().PRM()
	b := stepped.Snapshot().PRM()
	if !bytes.Equal(roadmapBytes(t, a.Roadmap), roadmapBytes(t, b.Roadmap)) {
		t.Fatal("batched and stepped growth produced different roadmaps")
	}
	if a.TotalTime != b.TotalTime {
		t.Fatalf("batched virtual time %v != stepped %v", a.TotalTime, b.TotalTime)
	}
	if batched.Rounds() != rounds || stepped.Rounds() != rounds {
		t.Fatalf("rounds = %d, %d; want %d", batched.Rounds(), stepped.Rounds(), rounds)
	}
}

// Snapshots must serve concurrent queries while the engine grows: run
// readers against whatever snapshot is current while Grow commits new
// rounds (this test is the -race sentinel for the serving layer).
func TestSnapshotQueryConcurrentWithGrow(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("med-cube"))
	eng, err := NewEngine(space, testEngineOpts())
	if err != nil {
		t.Fatal(err)
	}
	start, goal := V(0.05, 0.05, 0.05), V(0.95, 0.95, 0.95)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := eng.Snapshot()
				path, ok := snap.Query(start, goal, 8)
				if ok && len(path) < 2 {
					t.Error("degenerate path from snapshot query")
					return
				}
				// A snapshot never loses nodes relative to its own round.
				if snap.Rounds() > 0 && snap.NumNodes() == 0 {
					t.Error("committed snapshot has no nodes")
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		if err := eng.Grow(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if _, ok := eng.Snapshot().Query(start, goal, 8); !ok {
		t.Fatal("final snapshot cannot solve the benchmark query")
	}
}

// A canceled context must abort growth without tearing state: the
// previous snapshot stays valid, the round counter is unchanged, no
// goroutines leak, and the engine can resume growing afterwards.
func TestEngineCancellation(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("med-cube"))
	opts := testEngineOpts()
	opts.SamplesPerRegion = 40 // enough work for mid-phase cancellation
	eng, err := NewEngine(space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Grow(context.Background()); err != nil {
		t.Fatal(err)
	}
	committed := roadmapBytes(t, eng.Snapshot().PRM().Roadmap)
	baseline := runtime.NumGoroutine()

	// Pre-canceled context: must refuse immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.Grow(ctx); !errors.Is(err, ErrStopped) {
		t.Fatalf("Grow on canceled context: %v; want ErrStopped", err)
	}

	// Mid-round cancellation: fire the context while the round runs.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	err = eng.Grow(ctx2)
	if err != nil && !errors.Is(err, ErrStopped) {
		t.Fatalf("mid-round Grow: %v", err)
	}
	if err != nil {
		// The aborted round must not have touched the committed state.
		if eng.Rounds() != 1 {
			t.Fatalf("aborted round changed round count: %d", eng.Rounds())
		}
		if got := roadmapBytes(t, eng.Snapshot().PRM().Roadmap); !bytes.Equal(got, committed) {
			t.Fatal("aborted round mutated the committed roadmap")
		}
	}

	// No leaked goroutines once the dust settles.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The engine must keep working after cancellation.
	rounds := eng.Rounds()
	if err := eng.Grow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if eng.Rounds() != rounds+1 {
		t.Fatalf("post-cancel Grow did not commit: rounds %d -> %d", rounds, eng.Rounds())
	}

	// Resumed growth stays deterministic: a fresh engine grown to the
	// same round count (without any cancellations) matches exactly.
	ref, err := NewEngine(space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.GrowN(context.Background(), eng.Rounds()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(roadmapBytes(t, eng.Snapshot().PRM().Roadmap), roadmapBytes(t, ref.Snapshot().PRM().Roadmap)) {
		t.Fatal("growth after cancellation diverged from uninterrupted growth")
	}
}

// RRT engines must also be deterministic across call batching.
func TestEngineRRTDeterministicAcrossCalls(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("mixed-30"))
	root := V(0.5, 0.5, 0.5)
	opts := Options{Procs: 4, Regions: 32, NodesPerRegion: 15, Seed: 3}

	a, err := NewRRTEngine(space, root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.GrowN(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	b, err := NewRRTEngine(space, root, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := b.Grow(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ra, rb := a.Snapshot().RRT(), b.Snapshot().RRT()
	if ra.TotalNodes() != rb.TotalNodes() || len(ra.Bridges) != len(rb.Bridges) {
		t.Fatalf("batched (%d nodes, %d bridges) != stepped (%d nodes, %d bridges)",
			ra.TotalNodes(), len(ra.Bridges), rb.TotalNodes(), len(rb.Bridges))
	}
	for i := range ra.Branches {
		if ra.Branches[i].Len() != rb.Branches[i].Len() {
			t.Fatalf("branch %d: %d vs %d nodes", i, ra.Branches[i].Len(), rb.Branches[i].Len())
		}
		for j := range ra.Branches[i].Nodes {
			if !ra.Branches[i].Nodes[j].Q.Equal(rb.Branches[i].Nodes[j].Q, 0) {
				t.Fatalf("branch %d node %d differs", i, j)
			}
		}
	}
	// Every round must strictly extend the structure.
	if a.Rounds() != 2 {
		t.Fatalf("rounds = %d; want 2", a.Rounds())
	}
	if one, _ := PlanRRT(space, root, opts); ra.TotalNodes() <= one.TotalNodes() {
		t.Fatalf("2 rounds (%d nodes) did not grow past round 0 (%d nodes)", ra.TotalNodes(), one.TotalNodes())
	}
}
