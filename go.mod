module parmp

go 1.22
