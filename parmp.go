// Package parmp is a library for scalably parallelizing sampling-based
// motion planning algorithms with load balancing, reproducing:
//
//	A. Fidel, S. A. Jacobs, S. Sharma, N. M. Amato, L. Rauchwerger.
//	"Using Load Balancing to Scalably Parallelize Sampling-Based Motion
//	Planning Algorithms." IPDPS 2014.
//
// The library parallelizes the two major families of sampling-based
// planners by spatial subdivision — uniform grid subdivision for PRM and
// uniform radial subdivision for RRT — and balances the resulting
// heterogeneous region workloads with either adaptive work stealing
// (RAND-K, DIFFUSIVE or HYBRID victim selection) or bulk-synchronous
// repartitioning driven by per-region work estimates.
//
// Planning runs execute on a deterministic simulated distributed machine:
// every region task is charged the collision-detection and local-planning
// work the sequential planner actually performed, and steal requests,
// migrations and remote accesses travel as latency-weighted messages. This
// lets strong-scaling studies with thousands of virtual processors run on
// a laptop while preserving the load-balance behaviour the paper measured
// on a Cray XE6 and an Opteron cluster.
//
// # Quickstart
//
//	e := parmp.EnvironmentByName("med-cube")
//	space := parmp.NewPointSpace(e)
//	res, err := parmp.PlanPRM(space, parmp.Options{
//		Procs:    64,
//		Regions:  512,
//		Strategy: parmp.Repartition,
//	})
//	if err != nil { ... }
//	path, ok := parmp.Query(space, res.Roadmap, start, goal, 8)
//
// See examples/ for runnable programs and cmd/mpbench for the harness that
// regenerates every figure of the paper's evaluation.
package parmp

import (
	"io"

	"parmp/internal/core"
	"parmp/internal/cspace"
	"parmp/internal/env"
	"parmp/internal/geom"
	"parmp/internal/prm"
	"parmp/internal/rng"
	"parmp/internal/steal"
	"parmp/internal/work"
)

// Re-exported configuration types.
type (
	// Options configures a parallel planning run; see core.Options.
	Options = core.Options
	// Strategy selects the load balancing approach.
	Strategy = core.Strategy
	// PRMResult is the outcome of PlanPRM.
	PRMResult = core.PRMResult
	// RRTResult is the outcome of PlanRRT.
	RRTResult = core.RRTResult
	// PhaseBreakdown reports virtual time per pipeline phase.
	PhaseBreakdown = core.PhaseBreakdown
	// Environment is a workspace with obstacles.
	Environment = env.Environment
	// Space binds a robot to an environment (C-space, metric, sampler,
	// local planner).
	Space = cspace.Space
	// Config is a configuration (a point in C-space).
	Config = cspace.Config
	// Roadmap is a PRM roadmap graph.
	Roadmap = prm.Roadmap
	// MachineProfile holds the virtual machine's communication constants.
	MachineProfile = work.MachineProfile
	// StealPolicy selects steal victims.
	StealPolicy = steal.Policy
	// Vec is a d-dimensional point or direction.
	Vec = geom.Vec
)

// Load balancing strategies.
const (
	// NoLB runs the naive static partition without balancing.
	NoLB = core.NoLB
	// Repartition redistributes regions using per-region work estimates.
	Repartition = core.Repartition
	// WorkStealing steals regions during the expensive phase.
	WorkStealing = core.WorkStealing
)

// PlanPRM constructs a roadmap of space's free C-space with the
// uniform-subdivision parallel PRM under opts.
func PlanPRM(space *Space, opts Options) (*PRMResult, error) {
	return core.ParallelPRM(space, opts)
}

// PlanRRT grows a tree rooted at root with the uniform radial subdivision
// parallel RRT under opts.
func PlanRRT(space *Space, root Config, opts Options) (*RRTResult, error) {
	return core.ParallelRRT(space, root, opts)
}

// PlanRRTConnect grows a pair of trees per region (root-side and
// goal-side, greedily connected) with the uniform radial subdivision
// parallel RRT-Connect under opts. Requires symmetric local motions:
// steered spaces (Dubins) return an error.
func PlanRRTConnect(space *Space, root, goal Config, opts Options) (*RRTResult, error) {
	return core.ParallelRRTConnect(space, root, goal, opts)
}

// PlannerNames lists the planners understood by the command-line tools'
// -planner flags and servable by an Engine.
func PlannerNames() []string { return []string{"prm", "rrt", "rrtconnect"} }

// Query connects start and goal to a roadmap (each to its k nearest
// nodes) and extracts a path, returning ok=false if none exists. It
// builds a throwaway index per call, so it suits one-shot queries;
// answering several queries against the same roadmap is cheaper through
// NewRoadmapIndex (or an Engine snapshot, which holds one already).
func Query(space *Space, m *Roadmap, start, goal Config, k int) ([]Config, bool) {
	return prm.BuildIndex(m).Query(space, start, goal, k, nil)
}

// NewPointSpace returns the C-space of a point robot in e.
func NewPointSpace(e *Environment) *Space { return cspace.NewPointSpace(e) }

// NewRigidBodySpace returns the 6-DOF C-space of a rigid box body with
// the given half-extents in a 3D environment.
func NewRigidBodySpace(e *Environment, hx, hy, hz float64) *Space {
	return cspace.NewRigidBodySpace(e, cspace.NewRigidBox(hx, hy, hz))
}

// NewLinkageSpace returns the C-space of a planar articulated chain
// anchored at base with the given link lengths in a 2D environment.
func NewLinkageSpace(e *Environment, base Vec, linkLens ...float64) *Space {
	return cspace.NewLinkageSpace(e, cspace.Linkage{Base: base, LinkLen: linkLens})
}

// NewSE2Space returns the 3-DOF (x, y, theta) C-space of a 2D rigid
// rectangle with half extents (hx, hy) in a 2D environment.
func NewSE2Space(e *Environment, hx, hy float64) *Space {
	return cspace.NewSE2Space(e, cspace.NewRigidRect(hx, hy))
}

// ParseEnvironment reads an environment from the text format documented
// in internal/env.Parse (name / bounds / box / sphere directives).
func ParseEnvironment(r io.Reader) (*Environment, error) { return env.Parse(r) }

// NewDubinsSpace returns the C-space of a forward-only car with bounded
// turning radius in a 2D environment: configurations are (x, y, heading)
// and local plans follow shortest Dubins curves, so every planned motion
// is kinematically feasible.
func NewDubinsSpace(e *Environment, radius float64) *Space {
	return cspace.NewDubinsSpace(e, radius)
}

// EnvironmentByName returns one of the paper's benchmark environments
// (med-cube, small-cube, free, mixed, mixed-30, walls, maze-2d,
// corner-2d, model-2d), or nil if unknown.
func EnvironmentByName(name string) *Environment { return env.ByName(name) }

// EnvironmentNames lists the environments known to EnvironmentByName.
func EnvironmentNames() []string { return env.Names() }

// Steal policies.

// RandK asks k distinct random victims per steal round (the paper
// evaluates k = 8).
func RandK(k int) StealPolicy { return steal.RandK{K: k} }

// Diffusive asks the thief's neighbours in a 2D processor mesh.
func Diffusive() StealPolicy { return steal.Diffusive{} }

// Hybrid tries diffusive stealing first and falls back to k random
// victims when no neighbour can serve the request.
func Hybrid(k int) StealPolicy { return steal.Hybrid{K: k} }

// Machine profiles.

// HopperProfile approximates the paper's Cray XE6.
func HopperProfile() MachineProfile { return work.Hopper() }

// OpteronProfile approximates the paper's Opteron cluster.
func OpteronProfile() MachineProfile { return work.OpteronCluster() }

// V constructs a vector from components.
func V(xs ...float64) Vec { return geom.V(xs...) }

// Sampler generates candidate configurations; set Options.Sampler to use
// a non-uniform strategy.
type Sampler = cspace.Sampler

// UniformSampler draws uniformly in the region (the default).
func UniformSampler() Sampler { return cspace.UniformSampler{} }

// GaussianSampler concentrates samples near obstacle boundaries.
func GaussianSampler(sigma float64) Sampler { return cspace.GaussianSampler{Sigma: sigma} }

// BridgeSampler concentrates samples inside narrow passages.
func BridgeSampler(sigma float64) Sampler { return cspace.BridgeSampler{Sigma: sigma} }

// MixedSampler routes fraction of draws to secondary, the rest to primary.
func MixedSampler(primary, secondary Sampler, fraction float64) Sampler {
	return cspace.MixedSampler{Primary: primary, Secondary: secondary, Fraction: fraction}
}

// ShortcutPath post-processes a path by random shortcutting, returning a
// path that is never longer and always valid.
func ShortcutPath(space *Space, path []Config, iters int, seed uint64) []Config {
	return cspace.Shortcut(space, path, iters, rng.New(seed), nil)
}

// PathLength returns a path's total metric length.
func PathLength(space *Space, path []Config) float64 { return cspace.PathLength(space, path) }
