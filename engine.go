package parmp

import (
	"context"
	"sync"
	"sync/atomic"

	"parmp/internal/core"
	"parmp/internal/prm"
)

// ErrStopped is returned by Engine.Grow when the context is canceled
// before the round commits. The engine's committed state is untouched:
// the previous snapshot stays valid and Grow can be called again.
var ErrStopped = core.ErrStopped

// Engine is a resumable planner: where PlanPRM and PlanRRT build their
// structure in one shot and return, an Engine owns the space and
// options, grows its roadmap (or tree) incrementally — each Grow call
// is one pass through the phase pipeline, reusing the region graph and
// partition state — and serves queries concurrently through immutable
// snapshots published atomically after each round.
//
// Grow is serialized internally; Snapshot (and every Snapshot method)
// is safe to call from any number of goroutines at any time, including
// while a Grow is in flight.
type Engine struct {
	space *Space

	mu   sync.Mutex // serializes growth
	gen  uint64     // snapshots published so far (guarded by mu)
	prm  *core.PRMEngine
	rrt  *core.RRTEngine
	rrtc *core.RRTConnectEngine

	snap atomic.Pointer[Snapshot]
}

// NewEngine creates a PRM engine over space. The C-space is subdivided
// and partitioned immediately; no planning work happens until Grow.
// The initial snapshot is valid and empty (every query misses).
func NewEngine(space *Space, opts Options) (*Engine, error) {
	pe, err := core.NewPRMEngine(space, opts)
	if err != nil {
		return nil, err
	}
	e := &Engine{space: space, prm: pe}
	e.publish()
	return e, nil
}

// NewRRTEngine creates an RRT engine rooted at root: snapshots answer
// goal queries with paths from root, and each Grow extends every
// region's branch. The initial snapshot is valid and empty.
func NewRRTEngine(space *Space, root Config, opts Options) (*Engine, error) {
	re, err := core.NewRRTEngine(space, root, opts)
	if err != nil {
		return nil, err
	}
	e := &Engine{space: space, rrt: re}
	e.publish()
	return e, nil
}

// NewRRTConnectEngine creates an RRT-Connect engine rooted at root and
// aimed at goal: every region grows a pair of trees (root-side and
// goal-side) that greedily connect, and snapshots answer goal queries
// with paths from root through the merged branches. Steered spaces
// (Dubins) are rejected — RRT-Connect needs symmetric local motions.
// The initial snapshot is valid and empty.
func NewRRTConnectEngine(space *Space, root, goal Config, opts Options) (*Engine, error) {
	ce, err := core.NewRRTConnectEngine(space, root, goal, opts)
	if err != nil {
		return nil, err
	}
	e := &Engine{space: space, rrtc: ce}
	e.publish()
	return e, nil
}

// publish builds and atomically installs a fresh snapshot of the
// engine's committed result. Called with mu held (or before the engine
// escapes the constructor).
func (e *Engine) publish() { e.publishIndexed(nil) }

// publishIndexed is publish with an optional pre-repaired PRM index:
// ApplyDelta derives the new index incrementally from the old snapshot's
// (prm.RepairIndex) instead of rebuilding component labels from scratch.
func (e *Engine) publishIndexed(ix *prm.Index) {
	e.gen++
	s := &Snapshot{space: e.space, gen: e.gen, epoch: e.space.Env.Epoch}
	switch {
	case e.prm != nil:
		s.rounds = e.prm.Rounds()
		s.prmRes = e.prm.Result()
		if ix != nil {
			s.prmIx = ix
		} else {
			s.prmIx = prm.BuildIndex(s.prmRes.Roadmap)
		}
	case e.rrtc != nil:
		s.rounds = e.rrtc.Rounds()
		s.rrtRes = e.rrtc.Result()
		s.rrtIx = core.BuildTreeIndex(s.rrtRes)
	default:
		s.rounds = e.rrt.Rounds()
		s.rrtRes = e.rrt.Result()
		s.rrtIx = core.BuildTreeIndex(s.rrtRes)
	}
	e.snap.Store(s)
}

// Grow runs one growth round and publishes a new snapshot. It honours
// ctx cooperatively: cancellation is observed at phase barriers and
// between scheduler tasks, the partial round is discarded, and
// ErrStopped is returned with the previous snapshot still in place — a
// canceled engine is never torn and can keep growing later. A nil-like
// background context makes Grow run to completion unconditionally.
//
// Determinism: an engine's sequence of snapshots depends only on the
// options (seed included) and the number of committed rounds — growing
// N rounds in one sitting or across N calls yields the same roadmap.
func (e *Engine) Grow(ctx context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var stop <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return ErrStopped
		}
		stop = ctx.Done()
	}
	var err error
	switch {
	case e.prm != nil:
		err = e.prm.GrowRound(stop)
	case e.rrtc != nil:
		err = e.rrtc.GrowRound(stop)
	default:
		err = e.rrt.GrowRound(stop)
	}
	if err != nil {
		return err
	}
	e.publish()
	return nil
}

// GrowN runs up to n growth rounds, stopping early (with ErrStopped)
// if ctx is canceled; every round committed before cancellation is
// already published and stays queryable.
func (e *Engine) GrowN(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := e.Grow(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Rounds returns the number of committed growth rounds.
func (e *Engine) Rounds() int { return e.Snapshot().Rounds() }

// Snapshot returns the engine's latest published state. The returned
// value is immutable and safe for concurrent use; it remains valid
// (answering queries against its own round's structure) forever, even
// while the engine keeps growing past it.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Snapshot is an immutable view of an Engine after some number of
// committed growth rounds: the planner result plus a prebuilt kd index
// (and, for PRM, connected-component labels), so queries need no
// per-call gathering, sorting or roadmap mutation. All methods are safe
// for concurrent use.
type Snapshot struct {
	space  *Space
	rounds int
	gen    uint64
	epoch  uint64

	prmRes *PRMResult
	prmIx  *prm.Index

	rrtRes *RRTResult
	rrtIx  *core.TreeIndex
}

// Rounds returns the number of growth rounds this snapshot reflects.
func (s *Snapshot) Rounds() int { return s.rounds }

// Generation identifies this snapshot within its engine: it increments
// on every publish — growth rounds and repairs alike — so a cache keyed
// on it invalidates whenever the engine's answers could change. (Rounds
// is not that key: ApplyDelta publishes without growing.) Strictly
// increasing per engine, starting at 1 for the initial empty snapshot.
func (s *Snapshot) Generation() uint64 { return s.gen }

// Epoch is the environment epoch this snapshot was planned against:
// the number of mutations committed to the engine's world when it was
// published. Non-decreasing per engine; a query answered by an
// old-epoch snapshot may not reflect newer obstacles.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// PRM returns the snapshot's PRM result, or nil for RRT engines. The
// result (roadmap included) is frozen: treat it as read-only.
func (s *Snapshot) PRM() *PRMResult { return s.prmRes }

// RRT returns the snapshot's RRT result, or nil for PRM engines. The
// result (branches included) is frozen: treat it as read-only.
func (s *Snapshot) RRT() *RRTResult { return s.rrtRes }

// NumNodes returns the number of indexed configurations (roadmap nodes
// or tree nodes).
func (s *Snapshot) NumNodes() int {
	if s.prmIx != nil {
		return s.prmIx.NumNodes()
	}
	return s.rrtIx.NumNodes()
}

// queryInputOK screens a query's inputs: k must be positive (even for
// tree snapshots, where it is otherwise unused), and both endpoints must
// have the space's dimension and lie inside its bounds. Screening
// rejects with a miss rather than a panic, which is what a serving layer
// fed untrusted requests needs. NaN coordinates fail the bounds check.
func (s *Snapshot) queryInputOK(start, goal Config, k int) bool {
	if k <= 0 {
		return false
	}
	if len(start) != s.space.Dim() || len(goal) != s.space.Dim() {
		return false
	}
	return s.inBounds(start) && s.inBounds(goal)
}

// inBounds is Bounds.Contains with NaN rejection: a NaN coordinate fails
// every comparison, so the inverted form catches it.
func (s *Snapshot) inBounds(q Config) bool {
	for i, v := range q {
		if !(v >= s.space.Bounds.Lo[i] && v <= s.space.Bounds.Hi[i]) {
			return false
		}
	}
	return true
}

// Query answers a motion-planning query against the frozen snapshot,
// returning a collision-free path from start to goal (endpoints
// included) or ok=false when the snapshot cannot connect them yet.
// Malformed inputs — k ≤ 0, endpoints of the wrong dimension or outside
// the space's bounds — also answer (nil, false), never panic.
//
// For PRM snapshots, start and goal each attach to their k nearest
// reachable roadmap nodes and a shortest-path search joins them —
// without mutating the roadmap, unlike the package-level Query.
//
// For RRT snapshots the tree grows from the engine's root, so start
// must be the root (or local-plannable to it, for a start a step away);
// the path then follows tree edges to the node nearest goal. k is
// otherwise ignored.
func (s *Snapshot) Query(start, goal Config, k int) ([]Config, bool) {
	if !s.queryInputOK(start, goal, k) {
		return nil, false
	}
	if s.prmIx != nil {
		return s.prmIx.Query(s.space, start, goal, k, nil)
	}
	return s.rrtQuery(start, goal)
}

// QueryBatch answers len(starts) queries against the frozen snapshot in
// one pass, returning per-query paths and hit flags aligned with the
// inputs. Queries that fail input screening (see Query) miss without
// disturbing the rest of the batch; a mismatched goals length misses the
// whole batch.
//
// For PRM snapshots the batch amortizes shared work: endpoint
// deduplication, one batched kd pass for every attachment lookup, and
// one multi-source Dijkstra per distinct goal — so a batch over hot
// (start, goal) pairs costs far less than a Query loop. Tree snapshots
// answer each query individually. Safe for concurrent use.
func (s *Snapshot) QueryBatch(starts, goals []Config, k int) ([][]Config, []bool) {
	n := len(starts)
	paths := make([][]Config, n)
	oks := make([]bool, n)
	if len(goals) != n || n == 0 {
		return paths, oks
	}
	if s.prmIx == nil {
		for i := range starts {
			if s.queryInputOK(starts[i], goals[i], k) {
				paths[i], oks[i] = s.rrtQuery(starts[i], goals[i])
			}
		}
		return paths, oks
	}
	// Screen here so the prm batch only sees servable queries, then
	// scatter the sub-batch answers back to their slots.
	keep := make([]int, 0, n)
	for i := range starts {
		if s.queryInputOK(starts[i], goals[i], k) {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return paths, oks
	}
	subStarts := make([]Config, len(keep))
	subGoals := make([]Config, len(keep))
	for j, i := range keep {
		subStarts[j], subGoals[j] = starts[i], goals[i]
	}
	subPaths, subOKs := s.prmIx.QueryBatch(s.space, subStarts, subGoals, k, nil, nil)
	for j, i := range keep {
		paths[i], oks[i] = subPaths[j], subOKs[j]
	}
	return paths, oks
}

func (s *Snapshot) rrtQuery(start, goal Config) ([]Config, bool) {
	if s.rrtIx.NumNodes() == 0 {
		return nil, false
	}
	root := s.rrtRes.Branches[0].Nodes[0].Q
	path, ok := s.rrtIx.ExtractPath(s.space, goal, nil)
	if !ok {
		return nil, false
	}
	if start.Equal(root, 0) {
		return path, true
	}
	// Off-root start: admit it only if one local plan reaches the root.
	if !s.space.Valid(start, nil) || !s.space.LocalPlan(start, root, nil) {
		return nil, false
	}
	return append([]Config{start.Clone()}, path...), true
}
