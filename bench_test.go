package parmp_test

// One benchmark per table/figure of the paper's evaluation. Each bench
// regenerates the corresponding figure at the quick scale; run
// cmd/mpbench -scale full for the paper's processor counts (up to 3072
// virtual processors).
//
//	go test -bench=. -benchmem
//
// Benchmarks report the figure's headline number as a custom metric where
// one exists (speedup factors, CV reductions) so regressions in the
// reproduced SHAPE are visible, not just wall-clock changes.

import (
	"fmt"
	"runtime"
	"testing"

	"parmp"
	"parmp/internal/experiments"
	"parmp/internal/metrics"
)

func quickScale() experiments.Scale { return experiments.Quick() }

// benchFirstOverLast reports col0[last]/col1[last] as a speedup metric.
func reportSpeedup(b *testing.B, tb *metrics.Table, base, improved string) {
	bs := tb.Column(base)
	im := tb.Column(improved)
	if len(bs) == 0 || len(im) == 0 || im[0] == 0 {
		return
	}
	b.ReportMetric(bs[0]/im[0], "speedup-lowP")
	b.ReportMetric(bs[len(bs)-1]/im[len(im)-1], "speedup-highP")
}

func BenchmarkFig4a(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig4a(sc)
		if i == 0 {
			naive := tb.Column("model-imbalance")
			best := tb.Column("model-improvement")
			b.ReportMetric(naive[len(naive)-1], "naiveCV")
			b.ReportMetric(best[len(best)-1], "bestCV")
		}
	}
}

func BenchmarkFig4b(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig4b(sc)
		if i == 0 {
			theo := tb.Column("theoretical-pct")
			b.ReportMetric(theo[0], "theoretical-pct-lowP")
		}
	}
}

func BenchmarkFig5a(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig5a(sc)
		if i == 0 {
			reportSpeedup(b, tb, "without-lb", "repartitioning")
		}
	}
}

func BenchmarkFig5b(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig5b(sc)
		if i == 0 {
			before := tb.Column("before-repartitioning")
			after := tb.Column("after-repartitioning")
			b.ReportMetric(before[0], "cv-before")
			b.ReportMetric(after[0], "cv-after")
		}
	}
}

func BenchmarkFig5c(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig5c(sc)
		if i == 0 {
			noLB := tb.Column("without-lb")
			rp := tb.Column("repartitioning")
			b.ReportMetric(noLB[0]-noLB[len(noLB)-1], "spread-nolb")
			b.ReportMetric(rp[0]-rp[len(rp)-1], "spread-repart")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig6(sc)
		if i == 0 {
			reportSpeedup(b, tb, "without-lb", "repartitioning")
		}
	}
}

func BenchmarkFig7a(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig7a(sc)
		if i == 0 {
			nc := tb.Column("node-connection")
			rc := tb.Column("region-connection")
			other := tb.Column("other")
			b.ReportMetric(nc[0]/(nc[0]+rc[0]+other[0]), "node-conn-frac")
		}
	}
}

func BenchmarkFig7b(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig7b(sc)
		if i == 0 {
			region := tb.Column("region-graph")
			if region[0] > 0 {
				b.ReportMetric(region[1]/region[0], "remote-access-ratio")
			}
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig8(sc)
		if i == 0 {
			reportSpeedup(b, tables[0], "without-lb", "repartitioning")
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig9(sc)
		if i == 0 {
			b.ReportMetric(metrics.Sum(tables[0].Column("stolen")), "stolen-lowP")
			b.ReportMetric(metrics.Sum(tables[1].Column("stolen")), "stolen-highP")
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig10(sc)
		if i == 0 {
			mixed := tables[0]
			noLB := mixed.Column("without-lb")
			diff := mixed.Column("diffusive-ws")
			b.ReportMetric(noLB[0]/diff[0], "rrt-steal-speedup")
		}
	}
}

// BenchmarkPlanPRM measures the library's end-to-end planning throughput
// (independent of any figure).
func BenchmarkPlanPRM(b *testing.B) {
	e := parmp.EnvironmentByName("med-cube")
	space := parmp.NewPointSpace(e)
	opts := parmp.Options{Procs: 16, Regions: 128, SamplesPerRegion: 8, Strategy: parmp.Repartition, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parmp.PlanPRM(space, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostPipeline measures the wall-clock effect of running the
// heavy planner phases (PRM sampling, node connection, region connection)
// through the host executor: HostWorkers=1 executes every region closure
// sequentially during the virtual-time replay, HostWorkers=GOMAXPROCS
// pre-executes them concurrently. Virtual-time results are identical;
// only wall clock changes.
func BenchmarkHostPipeline(b *testing.B) {
	space := parmp.NewPointSpace(parmp.EnvironmentByName("med-cube"))
	base := parmp.Options{
		Procs: 16, Regions: 256, SamplesPerRegion: 12, ConnectK: 8,
		Strategy: parmp.Repartition, Seed: 1,
	}
	hws := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		hws = append(hws, n)
	}
	for _, hw := range hws {
		opts := base
		opts.HostWorkers = hw
		b.Run(fmt.Sprintf("hostworkers=%d", hw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := parmp.PlanPRM(space, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanRRT measures radial RRT planning throughput.
func BenchmarkPlanRRT(b *testing.B) {
	space := parmp.NewPointSpace(parmp.EnvironmentByName("mixed-30"))
	opts := parmp.Options{Procs: 8, Regions: 64, NodesPerRegion: 10, Radius: 0.5,
		Strategy: parmp.WorkStealing, Policy: parmp.Diffusive(), Seed: 1}
	root := parmp.V(0.5, 0.5, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parmp.PlanRRT(space, root, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks: design-choice studies from DESIGN.md.

func BenchmarkAblationDecomposition(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.AblationDecomposition(sc)
		if i == 0 {
			noLB := tb.Column("without-lb")
			rp := tb.Column("repartitioning")
			last := len(noLB) - 1
			b.ReportMetric(noLB[last]/rp[last], "speedup-at-max-decomp")
		}
	}
}

func BenchmarkAblationStealChunk(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		experiments.AblationStealChunk(sc)
	}
}

func BenchmarkAblationPartitioner(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		tb := experiments.AblationPartitioner(sc)
		if i == 0 {
			cut := tb.Column("edge-cut")
			if cut[0] > 0 {
				b.ReportMetric(cut[1]/cut[0], "lpt-cut-ratio")
			}
		}
	}
}

func BenchmarkAblationVictimPolicy(b *testing.B) {
	sc := quickScale()
	for i := 0; i < b.N; i++ {
		experiments.AblationVictimPolicy(sc)
	}
}
