package parmp

import (
	"strings"
	"testing"
)

func TestPublicPRMPipeline(t *testing.T) {
	e := EnvironmentByName("med-cube")
	if e == nil {
		t.Fatal("med-cube missing")
	}
	space := NewPointSpace(e)
	res, err := PlanPRM(space, Options{
		Procs:            8,
		Regions:          64,
		SamplesPerRegion: 10,
		Strategy:         Repartition,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Roadmap.NumNodes() == 0 {
		t.Fatal("empty roadmap")
	}
	start, goal := V(0.05, 0.05, 0.05), V(0.95, 0.95, 0.95)
	path, ok := Query(space, res.Roadmap, start, goal, 8)
	if !ok {
		t.Fatal("query failed in med-cube")
	}
	if len(path) < 2 {
		t.Fatalf("path too short: %d", len(path))
	}
}

func TestPublicRRTPipeline(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("mixed-30"))
	res, err := PlanRRT(space, V(0.5, 0.5, 0.5), Options{
		Procs:          4,
		Regions:        24,
		NodesPerRegion: 8,
		Radius:         0.4,
		Strategy:       WorkStealing,
		Policy:         Diffusive(),
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalNodes() < 24 {
		t.Fatalf("tree too small: %d", res.TotalNodes())
	}
}

func TestPublicStealPolicies(t *testing.T) {
	if RandK(8).Name() != "rand-8" {
		t.Fatal("RandK name")
	}
	if Diffusive().Name() != "diffusive" {
		t.Fatal("Diffusive name")
	}
	if Hybrid(8).Name() != "hybrid" {
		t.Fatal("Hybrid name")
	}
}

func TestPublicProfiles(t *testing.T) {
	if HopperProfile().Name != "hopper" || OpteronProfile().Name != "opteron-cluster" {
		t.Fatal("profile names wrong")
	}
}

func TestPublicEnvironments(t *testing.T) {
	for _, name := range EnvironmentNames() {
		if EnvironmentByName(name) == nil {
			t.Fatalf("environment %q missing", name)
		}
	}
	if EnvironmentByName("atlantis") != nil {
		t.Fatal("unknown environment should be nil")
	}
}

func TestPublicRigidBodyAndLinkageSpaces(t *testing.T) {
	rb := NewRigidBodySpace(EnvironmentByName("med-cube"), 0.02, 0.02, 0.02)
	if rb.Dim() != 6 {
		t.Fatalf("rigid body dim = %d", rb.Dim())
	}
	link := NewLinkageSpace(EnvironmentByName("maze-2d"), V(0.1, 0.5), 0.2, 0.2, 0.2)
	if link.Dim() != 3 {
		t.Fatalf("linkage dim = %d", link.Dim())
	}
}

func TestPublicSE2AndParse(t *testing.T) {
	e, err := ParseEnvironment(strings.NewReader("bounds 0 0 1 1\nbox 0.4 0.4 0.6 0.6\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSE2Space(e, 0.05, 0.02)
	if s.Dim() != 3 {
		t.Fatalf("SE2 dim = %d", s.Dim())
	}
	if _, err := ParseEnvironment(strings.NewReader("box 0 0 1 1\n")); err == nil {
		t.Fatal("invalid environment text should fail")
	}
}

func TestPublicSamplersAndShortcut(t *testing.T) {
	e := EnvironmentByName("med-cube")
	space := NewPointSpace(e)
	opts := Options{
		Procs: 4, Regions: 48, SamplesPerRegion: 12, Seed: 5,
		Sampler: MixedSampler(UniformSampler(), GaussianSampler(0.05), 0.3),
	}
	res, err := PlanPRM(space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Roadmap.NumNodes() == 0 {
		t.Fatal("no nodes with mixed sampler")
	}
	path := []Config{V(0.05, 0.05, 0.05), V(0.05, 0.95, 0.05), V(0.95, 0.95, 0.95)}
	short := ShortcutPath(space, path, 30, 1)
	if PathLength(space, short) > PathLength(space, path) {
		t.Fatal("shortcut lengthened the path")
	}
	if BridgeSampler(0.1).Name() != "bridge" {
		t.Fatal("bridge sampler name")
	}
}

func TestPublicRRTStarAndExtract(t *testing.T) {
	space := NewPointSpace(EnvironmentByName("free"))
	root := V(0.5, 0.5, 0.5)
	res, err := PlanRRT(space, root, Options{
		Procs: 4, Regions: 24, NodesPerRegion: 15, Radius: 0.45,
		Star: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewires == 0 {
		t.Fatal("RRT* should rewire in free space")
	}
	path, ok := NewTreeIndex(res).ExtractPath(space, V(0.6, 0.55, 0.5))
	if !ok || len(path) < 2 {
		t.Fatalf("extract failed: ok=%v len=%d", ok, len(path))
	}
}
